"""Command-line interface for the DANCE reproduction.

The CLI covers the three things a downstream user typically wants to do from a
shell without writing Python:

``repro-dance catalog``
    Generate a workload, host it on the in-process marketplace, and print the
    (free) schema-level catalog.  Subactions manage persistent catalogs
    (:mod:`repro.storage`): ``catalog init --catalog PATH`` persists the
    marketplace to disk, ``catalog persist`` additionally runs the offline
    phase and stores JI edge weights for warm restarts, ``catalog inspect``
    prints a stored catalog's summary, and plain ``catalog`` (``show``) reads
    from ``--catalog`` when the file exists.

``repro-dance acquire``
    Run the full offline + online pipeline for one acquisition request and
    print the recommended SQL projection queries and the estimated metrics.
    ``--top-k`` switches to the ranked multi-option recommendation.

``repro-dance batch``
    Serve a JSON file of acquisition requests through one long-lived
    :class:`~repro.service.AcquisitionService` — one offline phase, shared
    caches, concurrent execution with deterministic per-request seeds,
    bounded admission (``--queue-depth`` / ``--admission``), optional priced
    QoS scheduling (``--qos on`` / ``--tier``) — and print one summary per
    request plus the service metrics.  ``--catalog PATH`` makes
    the service persistent: an existing catalog is opened instead of
    regenerating the workload (warm offline phase, restored session caches),
    and the session is checkpointed back after serving.

``repro-dance metrics``
    Serve requests the same way but print only the operational metrics dump:
    latency histogram with p50/p95/p99, cache hit-rate trend, queue
    depth/rejection counters, Step-1 memo accounting.

``repro-dance serve``
    Keep one hot service (or an N-shard router, ``--shards``) behind a
    stdlib HTTP/JSON endpoint: ``POST /acquire`` (single + batch,
    per-request seeds honoured), ``GET /metrics`` (Prometheus text format),
    ``GET /healthz``, graceful drain + catalog checkpoint on shutdown.  See
    :mod:`repro.service.server`.

``repro-dance export-graph``
    Build the join graph from samples and export it to JSON and/or DOT.

``repro-dance lint``
    Run dancelint, the repo's AST-based determinism / concurrency invariant
    checker (:mod:`repro.analysis`), over source paths: ``--baseline``
    absorbs the accepted debt in ``scripts/dancelint_baseline.json``,
    ``--format json`` emits the CI artifact, ``--explain`` lists every rule.

All commands operate on the built-in synthetic workloads (``tpch`` / ``tpce``),
since the library ships no external data.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.config import DanceConfig, ServiceConfig
from repro.core.dance import DANCE
from repro.exceptions import ReproError
from repro.graph.export import join_graph_to_dot, write_dot, write_join_graph_json
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.pricing.models import EntropyPricingModel
from repro.search.mcmc import EXECUTORS, MCMCConfig
from repro.search.topk import ScoreWeights, top_k_acquisition
from repro.marketplace.shopper import AcquisitionRequest
from repro.service import AcquisitionService
from repro.workloads.queries import queries_for
from repro.workloads.tpce import tpce_workload
from repro.workloads.tpch import tpch_workload


def _build_workload(workload_name: str, scale: float, seed: int):
    if workload_name == "tpch":
        return tpch_workload(scale=scale, seed=seed)
    if workload_name == "tpce":
        return tpce_workload(scale=scale, seed=seed)
    raise ReproError(f"unknown workload {workload_name!r} (expected 'tpch' or 'tpce')")


def _host_workload(workload) -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    for name in workload.tables:
        marketplace.host(
            MarketplaceDataset(table=workload.dirty_or_clean(name), pricing=pricing)
        )
    return marketplace


def _build_marketplace(
    workload_name: str, scale: float, seed: int
) -> tuple[Marketplace, object]:
    workload = _build_workload(workload_name, scale, seed)
    return _host_workload(workload), workload


def _service_marketplace(args: argparse.Namespace) -> tuple[Marketplace, object]:
    """The (marketplace, workload) pair for service-mode commands.

    With ``--catalog`` pointing at an existing file, the marketplace opens
    from the catalog (lazy tables, persisted offline state) instead of being
    regenerated; the workload object is still built for request/query-name
    resolution.  A missing catalog file is not an error — the service
    checkpoint after serving creates it.
    """
    workload = _build_workload(args.workload, args.scale, args.seed)
    catalog = getattr(args, "catalog", None)
    if catalog is not None and Path(catalog).exists():
        return Marketplace.open(catalog), workload
    return _host_workload(workload), workload


def _build_dance(marketplace: Marketplace, args: argparse.Namespace) -> DANCE:
    config = DanceConfig(
        sampling_rate=args.sampling_rate,
        mcmc=MCMCConfig(
            iterations=args.mcmc_iterations,
            seed=args.seed,
            chains=args.chains,
            executor=args.executor,
        ),
        num_landmarks=args.landmarks,
        # --plan wins over --chains/--executor (DanceConfig folds it in).
        plan=getattr(args, "plan", None),
    )
    dance = DANCE(marketplace, config)
    dance.build_offline()
    return dance


# ------------------------------------------------------------------- commands
def cmd_catalog(args: argparse.Namespace) -> int:
    action = args.action
    if action in ("init", "persist") and args.catalog is None:
        print(
            f"error: 'catalog {action}' requires --catalog PATH", file=sys.stderr
        )
        return 2
    if action == "inspect":
        from repro.storage import open_backend

        if args.catalog is None:
            print("error: 'catalog inspect' requires --catalog PATH", file=sys.stderr)
            return 2
        with open_backend(args.catalog) as backend:
            print(json.dumps(backend.describe(), indent=2))
        return 0
    if action in ("init", "persist"):
        marketplace, _ = _build_marketplace(args.workload, args.scale, args.seed)
        if action == "persist":
            # Offline phase included: the catalog carries JI edge weights and
            # FDs, so the next open + build_offline recomputes zero edges.
            dance = _build_dance(marketplace, args)
            backend = dance.persist(args.catalog, kind=args.storage)
        else:
            backend = marketplace.persist(args.catalog, kind=args.storage)
        print(json.dumps(backend.describe(), indent=2))
        return 0
    # action == "show"
    if args.catalog is not None and Path(args.catalog).exists():
        marketplace = Marketplace.open(args.catalog)
    else:
        marketplace, _ = _build_marketplace(args.workload, args.scale, args.seed)
    entries = marketplace.catalog()
    if args.json:
        print(json.dumps(entries, indent=2))
    else:
        print(f"{'dataset':<22}{'rows':>8}{'attrs':>7}  attributes")
        for entry in entries:
            print(
                f"{entry['name']:<22}{entry['num_rows']:>8}{len(entry['attributes']):>7}  "
                f"{', '.join(entry['attributes'])}"
            )
    return 0


def cmd_acquire(args: argparse.Namespace) -> int:
    marketplace, workload = _build_marketplace(args.workload, args.scale, args.seed)
    dance = _build_dance(marketplace, args)

    if args.query:
        query = queries_for(workload)[args.query]
        source_attributes = list(query.source_attributes)
        target_attributes = list(query.target_attributes)
    else:
        source_attributes = args.source or []
        target_attributes = args.target or []
    if not target_attributes:
        print("error: provide --target attributes or --query Q1/Q2/Q3", file=sys.stderr)
        return 2

    if args.top_k > 1:
        options = top_k_acquisition(
            dance.join_graph,
            source_attributes,
            target_attributes,
            dance.fds,
            k=args.top_k,
            budget=args.budget,
            max_weight=args.alpha,
            min_quality=args.beta,
            weights=ScoreWeights(),
            mcmc_config=dance.config.mcmc,
            rng=args.seed,
        )
        payload = [option.summary() for option in options]
        print(json.dumps(payload, indent=2))
        return 0

    request = AcquisitionRequest(
        source_attributes=source_attributes,
        target_attributes=target_attributes,
        budget=args.budget,
        max_join_informativeness=args.alpha,
        min_quality=args.beta,
    )
    result = dance.acquire(request)
    if args.json:
        print(json.dumps(result.summary(), indent=2, default=str))
    else:
        print("Recommended purchase:")
        for sql in result.sql():
            print(f"  {sql}")
        print(f"estimated correlation         : {result.estimated_correlation:.4f}")
        print(f"estimated quality             : {result.estimated_quality:.4f}")
        print(f"estimated join informativeness: {result.estimated_join_informativeness:.4f}")
        print(f"estimated price               : {result.estimated_price:.2f}")
        print(f"sample cost                   : {result.sample_cost:.3f}")
        if result.mcmc_chains > 1:
            print(
                f"mcmc chains                   : {result.mcmc_chains} "
                f"({result.mcmc_executor}, best chain {result.mcmc_best_chain})"
            )
    return 0


def _parse_batch_requests(
    path: Path, workload, default_tier: str | None = None
) -> list[AcquisitionRequest]:
    """Read a JSON list of request specs into ``AcquisitionRequest`` objects.

    Each entry either names a predefined workload query (``{"query": "Q1",
    "budget": 100}``) or spells the attributes out (``{"source": [...],
    "target": [...], "budget": 100, "alpha": 2.5, "beta": 0.8}``); both forms
    additionally take ``shopper`` / ``tier`` / ``deadline``.  ``default_tier``
    (the ``--tier`` flag) applies to specs that name no tier of their own.
    """
    try:
        specs = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read batch requests from {path}: {error}") from error
    if not isinstance(specs, list):
        raise ReproError(f"{path} must hold a JSON list of request objects")
    requests: list[AcquisitionRequest] = []
    known = queries_for(workload)
    for index, spec in enumerate(specs):
        if not isinstance(spec, dict):
            raise ReproError(f"request {index} in {path} is not a JSON object")
        if "query" in spec:
            name = spec["query"]
            if name not in known:
                raise ReproError(
                    f"request {index}: unknown query {name!r} (expected {sorted(known)})"
                )
            query = known[name]
            source = list(query.source_attributes)
            target = list(query.target_attributes)
        else:
            source = list(spec.get("source", []))
            target = list(spec.get("target", []))
        deadline = spec.get("deadline")
        requests.append(
            AcquisitionRequest(
                source_attributes=source,
                target_attributes=target,
                budget=float(spec.get("budget", 100.0)),
                max_join_informativeness=float(spec.get("alpha", float("inf"))),
                min_quality=float(spec.get("beta", 0.0)),
                shopper=spec.get("shopper"),
                tier=spec.get("tier", default_tier),
                deadline=float(deadline) if deadline is not None else None,
            )
        )
    return requests


def _service_config(args: argparse.Namespace) -> DanceConfig:
    """The service-mode configuration shared by ``batch`` and ``metrics``."""
    return DanceConfig(
        sampling_rate=args.sampling_rate,
        mcmc=MCMCConfig(
            iterations=args.mcmc_iterations,
            seed=args.seed,
            chains=args.chains,
            executor=args.executor,
        ),
        num_landmarks=args.landmarks,
        plan=getattr(args, "plan", None),
        service=ServiceConfig(
            seed=args.service_seed,
            max_batch_workers=args.batch_workers,
            max_queue_depth=args.queue_depth,
            admission=args.admission,
            qos=(True if getattr(args, "qos", "off") == "on" else None),
            catalog_path=(
                None if getattr(args, "catalog", None) is None else str(args.catalog)
            ),
        ),
    )


def cmd_batch(args: argparse.Namespace) -> int:
    marketplace, workload = _service_marketplace(args)
    requests = _parse_batch_requests(args.requests, workload, default_tier=args.tier)
    config = _service_config(args)
    with AcquisitionService(marketplace, config) as service:
        batch = service.acquire_batch(requests)
        if args.catalog is not None:
            # Checkpoint the warmed session (offline state + caches) so the
            # next `batch --catalog` run restarts warm.
            service.persist()
        metrics = service.metrics()
        payload = {
            "service": {
                "seed": service.seed,
                "batch_workers": config.service.max_batch_workers,
                "queue_depth": config.service.max_queue_depth,
                "admission": config.service.admission,
                "qos": metrics["qos"]["enabled"],
                "requests": len(requests),
                "errors": len(batch.errors()),
                "rejected": metrics["queue"]["rejected"],
                "rate_limited": metrics["qos"]["rate_limited"],
                "deadline_exceeded": metrics["qos"]["deadline_exceeded"],
                "latency_p50_seconds": metrics["latency"]["p50_seconds"],
                "latency_p95_seconds": metrics["latency"]["p95_seconds"],
            },
            "results": batch.summary(),
            "metrics": metrics,
        }
    print(json.dumps(payload, indent=2, default=str))
    return 0 if batch.ok else 1


def _print_tier_table(metrics: dict) -> None:
    """Human-readable SLA tier summary (stderr: stdout stays pure JSON)."""
    tiers = metrics.get("qos", {}).get("tiers") or {}
    if not tiers:
        return
    print(
        f"{'tier':<10}{'weight':>8}{'requests':>10}{'rate_lim':>10}"
        f"{'deadline':>10}{'wait_p50':>12}{'wait_p95':>12}",
        file=sys.stderr,
    )
    for name, tier in tiers.items():
        wait = tier.get("queue_wait") or {}

        def fmt(value: object) -> str:
            return "-" if value is None else f"{float(value):.4f}"

        print(
            f"{name:<10}{tier['weight']:>8g}{tier['requests']:>10}"
            f"{tier['rate_limited']:>10}{tier['deadline_exceeded']:>10}"
            f"{fmt(wait.get('p50_seconds')):>12}{fmt(wait.get('p95_seconds')):>12}",
            file=sys.stderr,
        )


def cmd_metrics(args: argparse.Namespace) -> int:
    """Serve requests through one service and dump only the metrics."""
    marketplace, workload = _service_marketplace(args)
    if args.requests is not None:
        batches = [_parse_batch_requests(args.requests, workload, default_tier=args.tier)]
    else:
        # Default traffic: the predefined workload queries as one batch,
        # served twice — the repeat reuses the per-index seeds, so the dump
        # shows warm-path behaviour (hit-rate trend up, Step-1 memo hits).
        base = [
            AcquisitionRequest(
                source_attributes=list(query.source_attributes),
                target_attributes=list(query.target_attributes),
                budget=args.budget,
                tier=args.tier,
            )
            for query in queries_for(workload).values()
        ]
        batches = [base, base]
    config = _service_config(args)
    with AcquisitionService(marketplace, config) as service:
        outcomes = [service.acquire_batch(batch) for batch in batches]
        if args.catalog is not None:
            service.persist()
        payload = service.metrics()
    print(json.dumps(payload, indent=2, default=str))
    _print_tier_table(payload)
    # Same contract as `batch`: non-zero exit when any request failed.
    return 0 if all(outcome.ok for outcome in outcomes) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived HTTP acquisition server (see repro.service.server)."""
    from repro.service.router import ShardRouter
    from repro.service.server import AcquisitionHTTPServer

    marketplace, workload = _service_marketplace(args)
    config = _service_config(args)
    if args.shards > 1:
        service = ShardRouter(marketplace, config, num_shards=args.shards)
    else:
        service = AcquisitionService(marketplace, config)
    with service:
        server = AcquisitionHTTPServer(
            (args.host, args.port),
            service,
            queries=queries_for(workload),
            default_tier=args.tier,
        )
        thread = server.serve_background()
        print(
            json.dumps(
                {
                    "serving": f"http://{args.host}:{server.port}",
                    "shards": args.shards,
                    "queue_depth": config.service.max_queue_depth,
                    "admission": config.service.admission,
                    "qos": config.service.qos is not None,
                }
            ),
            flush=True,
        )
        # SIGTERM (systemd stop, container orchestration, the shm leak check)
        # must take the same drain path as Ctrl-C: without a handler, Python's
        # default action kills the process before pools shut down and shared
        # memory segments would stay linked in /dev/shm.
        import signal

        def _on_sigterm(signum, frame):
            raise KeyboardInterrupt

        previous_handler = None
        try:
            previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:
            pass  # not the main thread (embedded use); SIGTERM keeps its default
        try:
            if args.serve_seconds is not None:
                time.sleep(args.serve_seconds)
            else:
                while thread.is_alive():
                    thread.join(timeout=1.0)
        except KeyboardInterrupt:
            pass
        finally:
            if previous_handler is not None:
                signal.signal(signal.SIGTERM, previous_handler)
        drained = server.graceful_shutdown(timeout=args.drain_timeout)
        print(json.dumps({"drained": drained, "metrics": service.metrics()}, default=str))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the dancelint static invariant checker (see repro.analysis)."""
    from repro.analysis.runner import DEFAULT_BASELINE, explain_rules, run_lint

    if args.explain:
        return explain_rules()
    select = [
        code.strip()
        for chunk in (args.select or [])
        for code in chunk.split(",")
        if code.strip()
    ]
    baseline = args.baseline
    if args.use_default_baseline and baseline is None:
        baseline = DEFAULT_BASELINE
    return run_lint(
        args.paths or ["src/repro"],
        output_format=args.output_format,
        baseline_path=baseline,
        write_baseline=args.write_baseline,
        select=select or None,
    )


def cmd_export_graph(args: argparse.Namespace) -> int:
    marketplace, _ = _build_marketplace(args.workload, args.scale, args.seed)
    dance = _build_dance(marketplace, args)
    graph = dance.join_graph
    wrote = []
    if args.json_out:
        wrote.append(str(write_join_graph_json(graph, args.json_out)))
    if args.dot_out:
        wrote.append(str(write_dot(join_graph_to_dot(graph), args.dot_out)))
    if not wrote:
        print(json.dumps(dance.describe()["join_graph"], indent=2))
    else:
        for path in wrote:
            print(f"wrote {path}")
    return 0


# --------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dance",
        description="DANCE: cost-efficient data acquisition for correlation analysis",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--workload", choices=("tpch", "tpce"), default="tpch")
        sub.add_argument("--scale", type=float, default=0.1, help="workload scale factor")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--sampling-rate", type=float, default=0.5)
        sub.add_argument("--mcmc-iterations", type=int, default=100)
        sub.add_argument("--chains", type=int, default=1,
                         help="number of parallel MCMC chains (per I-graph)")
        sub.add_argument("--executor", choices=EXECUTORS,
                         default="serial", help="how multi-chain walks execute")
        sub.add_argument(
            "--plan",
            default=None,
            help="execution plan spec, e.g. 'executor=process,chains=4,"
            "shared_store=on,pool_policy=persistent'; overrides --chains/--executor",
        )
        sub.add_argument("--landmarks", type=int, default=4)

    catalog = subparsers.add_parser(
        "catalog", help="print the marketplace catalog / manage persistent catalogs"
    )
    catalog.add_argument(
        "action",
        nargs="?",
        choices=("show", "init", "persist", "inspect"),
        default="show",
        help="show the catalog (default), persist the marketplace to --catalog "
        "(init: tables only; persist: plus the offline phase for warm "
        "restarts), or inspect a stored catalog file",
    )
    add_common(catalog)
    catalog.add_argument("--json", action="store_true")
    catalog.add_argument(
        "--catalog", type=Path, default=None, help="catalog file to read or write"
    )
    catalog.add_argument(
        "--storage",
        choices=("sqlite", "duckdb"),
        default=None,
        help="storage backend for init/persist (default sqlite; duckdb falls "
        "back to sqlite with a warning when not installed)",
    )
    catalog.set_defaults(func=cmd_catalog)

    acquire = subparsers.add_parser("acquire", help="run one acquisition request")
    add_common(acquire)
    acquire.add_argument("--query", choices=("Q1", "Q2", "Q3"), help="use a predefined query")
    acquire.add_argument("--source", nargs="*", help="source attributes A_S")
    acquire.add_argument("--target", nargs="*", help="target attributes A_T")
    acquire.add_argument("--budget", type=float, default=100.0)
    acquire.add_argument("--alpha", type=float, default=float("inf"),
                         help="max total join informativeness")
    acquire.add_argument("--beta", type=float, default=0.0, help="min quality")
    acquire.add_argument("--top-k", type=int, default=1, help="return the k best options")
    acquire.add_argument("--json", action="store_true")
    acquire.set_defaults(func=cmd_acquire)

    def add_service_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--batch-workers",
            type=int,
            default=4,
            help="how many requests execute concurrently (results are identical either way)",
        )
        sub.add_argument(
            "--service-seed",
            type=int,
            default=None,
            help="service base seed for per-request seed derivation (default: --seed)",
        )
        sub.add_argument(
            "--queue-depth",
            type=int,
            default=None,
            help="bound on admitted (queued + executing) requests; default: unbounded",
        )
        sub.add_argument(
            "--admission",
            choices=("block", "reject"),
            default="block",
            help="full-queue policy: block the submitter or reject the request",
        )
        sub.add_argument(
            "--catalog",
            type=Path,
            default=None,
            help="persistent catalog file: opened when it exists (warm "
            "restart), checkpointed after serving",
        )
        sub.add_argument(
            "--qos",
            choices=("off", "on"),
            default="off",
            help="QoS scheduling: weighted fair queueing over SLA tiers, "
            "per-shopper token-bucket rate limits, deadline-aware shedding "
            "(served bits are identical either way)",
        )
        sub.add_argument(
            "--tier",
            choices=("bronze", "silver", "gold"),
            default=None,
            help="default SLA tier stamped on requests that name none",
        )

    batch = subparsers.add_parser(
        "batch", help="serve a JSON file of requests through one acquisition service"
    )
    add_common(batch)
    batch.add_argument(
        "requests",
        type=Path,
        help="JSON file holding a list of request objects "
        '({"query": "Q1", "budget": 100} or {"source": [...], "target": [...], '
        '"budget": 100, "alpha": ..., "beta": ..., "shopper": "alice"})',
    )
    add_service_options(batch)
    batch.set_defaults(func=cmd_batch)

    metrics = subparsers.add_parser(
        "metrics",
        help="serve requests through one acquisition service and dump its metrics",
    )
    add_common(metrics)
    metrics.add_argument(
        "requests",
        type=Path,
        nargs="?",
        default=None,
        help="optional JSON request file (default: the predefined workload queries, twice)",
    )
    metrics.add_argument(
        "--budget", type=float, default=100.0, help="budget of the default requests"
    )
    add_service_options(metrics)
    metrics.set_defaults(func=cmd_metrics)

    serve = subparsers.add_parser(
        "serve", help="run a long-lived HTTP acquisition server (stdlib http.server)"
    )
    add_common(serve)
    add_service_options(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642, help="listen port (0 picks an ephemeral port)"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="in-process service shards behind the router (answers are "
        "bit-identical to --shards 1)",
    )
    serve.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        help="serve for N seconds then drain and exit (default: until interrupted)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="how long graceful shutdown waits for in-flight requests",
    )
    serve.set_defaults(func=cmd_serve)

    export = subparsers.add_parser("export-graph", help="export the join graph")
    add_common(export)
    export.add_argument("--json-out", type=Path)
    export.add_argument("--dot-out", type=Path)
    export.set_defaults(func=cmd_export_graph)

    lint = subparsers.add_parser(
        "lint", help="run dancelint, the static determinism/concurrency checker"
    )
    lint.add_argument(
        "paths", nargs="*", help="files or directories to lint (default: src/repro)"
    )
    lint.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="report format (json matches the CI artifact schema)",
    )
    lint.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="absorb findings recorded in this baseline file",
    )
    lint.add_argument(
        "--use-default-baseline",
        action="store_true",
        help="shorthand for --baseline scripts/dancelint_baseline.json",
    )
    lint.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="persist the current findings as the new accepted debt and exit 0",
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="comma-separated rule codes to run (repeatable); default: all rules",
    )
    lint.add_argument(
        "--explain", action="store_true", help="list every registered rule and exit"
    )
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
