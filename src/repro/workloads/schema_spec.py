"""Declarative specification and generation of synthetic relational workloads.

A workload is described by a list of :class:`TableSpec` objects.  Each table
spec declares its columns; a column is either

* a **key** column (unique integer identifiers),
* a **foreign key** referencing another table's key column (this is what wires
  up the join paths the evaluation needs),
* a **categorical** column drawn from a value pool, optionally *derived* from
  another column through a deterministic mapping (which plants a functional
  dependency the quality machinery can discover and that dirty-data injection
  can violate), or
* a **numerical** column drawn from a configurable distribution.

:class:`WorkloadBuilder` turns the specs into :class:`~repro.relational.table.Table`
objects, collects the planted FDs, and optionally injects inconsistency into a
chosen subset of tables (the paper corrupts 6 of 8 TPC-H tables and 20 of 29
TPC-E tables at fixed rates).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import SchemaError
from repro.quality.dirty import inject_inconsistency
from repro.quality.fd import FunctionalDependency
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table, Value


def _stable_hash(value: object) -> int:
    """Process-independent hash used for derived columns (not PYTHONHASHSEED-salted)."""
    digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class ColumnSpec:
    """Specification of one column of a synthetic table.

    Exactly one of the following roles applies:

    * ``kind="key"`` — unique integers ``0..rows-1`` (optionally offset);
    * ``kind="foreign_key"`` — values drawn (skewed by Zipf-like weighting when
      ``skew > 0``) from the referenced table's key column;
    * ``kind="categorical"`` — values drawn from ``categories`` (or generated
      labels ``prefix_0..prefix_{cardinality-1}``); when ``derived_from`` is
      given, the value is a deterministic function of that column's value,
      planting the FD ``derived_from -> name``;
    * ``kind="numerical"`` — floats from a uniform or normal distribution, or
      derived from another numeric/key column plus noise.
    """

    name: str
    kind: str = "categorical"
    references: tuple[str, str] | None = None  # (table, column) for foreign keys
    categories: tuple[str, ...] | None = None
    cardinality: int = 10
    prefix: str | None = None
    derived_from: str | None = None
    distribution: str = "uniform"  # uniform | normal for numerical columns
    low: float = 0.0
    high: float = 1000.0
    mean: float = 0.0
    std: float = 1.0
    skew: float = 0.0
    offset: int = 0

    def attribute(self) -> Attribute:
        if self.kind in ("key", "foreign_key", "numerical"):
            return Attribute(self.name, AttributeType.NUMERICAL)
        return Attribute(self.name, AttributeType.CATEGORICAL)


@dataclass(frozen=True)
class TableSpec:
    """Specification of one synthetic table: name, row count, and column specs."""

    name: str
    rows: int
    columns: tuple[ColumnSpec, ...]

    def __init__(self, name: str, rows: int, columns: Sequence[ColumnSpec]) -> None:
        if rows < 0:
            raise SchemaError(f"table {name!r} cannot have a negative row count")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "columns", tuple(columns))

    @property
    def schema(self) -> Schema:
        return Schema([column.attribute() for column in self.columns])

    def planted_fds(self) -> list[FunctionalDependency]:
        """FDs implied by the spec: ``derived_from -> column`` for deterministic derivations.

        Only *categorical* derived columns plant an FD — numerical derived
        columns add Gaussian noise, so the dependency is only approximate and
        must not be treated as ground truth.
        """
        fds: list[FunctionalDependency] = []
        for column in self.columns:
            if column.derived_from is not None and column.kind == "categorical":
                fds.append(FunctionalDependency((column.derived_from,), column.name))
        return fds


@dataclass
class GeneratedWorkload:
    """The output of a workload builder: tables, planted FDs, and dirty variants."""

    name: str
    tables: dict[str, Table]
    fds: dict[str, list[FunctionalDependency]] = field(default_factory=dict)
    dirty_tables: dict[str, Table] = field(default_factory=dict)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"workload {self.name!r} has no table {name!r}") from None

    def dirty_or_clean(self, name: str) -> Table:
        """The dirty variant when it exists, else the clean table."""
        return self.dirty_tables.get(name, self.table(name))

    def all_tables(self, *, prefer_dirty: bool = True) -> list[Table]:
        if prefer_dirty:
            return [self.dirty_or_clean(name) for name in self.tables]
        return list(self.tables.values())

    def all_fds(self) -> list[FunctionalDependency]:
        collected: list[FunctionalDependency] = []
        seen: set[tuple] = set()
        for fds in self.fds.values():
            for fd in fds:
                key = (fd.lhs, fd.rhs)
                if key not in seen:
                    seen.add(key)
                    collected.append(fd)
        return collected

    def subset(self, names: Sequence[str]) -> "GeneratedWorkload":
        """A workload restricted to ``names`` (used by the #instances sweeps)."""
        missing = [name for name in names if name not in self.tables]
        if missing:
            raise SchemaError(f"workload {self.name!r} has no tables {missing}")
        return GeneratedWorkload(
            name=self.name,
            tables={name: self.tables[name] for name in names},
            fds={name: list(self.fds.get(name, [])) for name in names},
            dirty_tables={
                name: self.dirty_tables[name] for name in names if name in self.dirty_tables
            },
        )

    def describe(self) -> dict[str, object]:
        """Summary used to regenerate Table 5."""
        sizes = {name: len(table) for name, table in self.tables.items()}
        widths = {name: len(table.schema) for name, table in self.tables.items()}
        fd_counts = [len(fds) for fds in self.fds.values()] or [0]
        smallest = min(sizes, key=sizes.get)
        largest = max(sizes, key=sizes.get)
        narrowest = min(widths, key=widths.get)
        widest = max(widths, key=widths.get)
        return {
            "workload": self.name,
            "num_instances": len(self.tables),
            "min_instance_size": (smallest, sizes[smallest]),
            "max_instance_size": (largest, sizes[largest]),
            "min_num_attributes": (narrowest, widths[narrowest]),
            "max_num_attributes": (widest, widths[widest]),
            "avg_fds_per_table": sum(fd_counts) / len(fd_counts),
        }


class WorkloadBuilder:
    """Generates tables from :class:`TableSpec` objects with a shared RNG."""

    def __init__(self, name: str, seed: int = 0) -> None:
        self.name = name
        self._rng = random.Random(seed)
        self._specs: list[TableSpec] = []

    def add(self, spec: TableSpec) -> "WorkloadBuilder":
        self._specs.append(spec)
        return self

    def extend(self, specs: Sequence[TableSpec]) -> "WorkloadBuilder":
        self._specs.extend(specs)
        return self

    # --------------------------------------------------------------- columns
    def _key_values(self, spec: ColumnSpec, rows: int) -> list[Value]:
        return [spec.offset + i for i in range(rows)]

    def _foreign_key_values(
        self, spec: ColumnSpec, rows: int, tables: Mapping[str, Table]
    ) -> list[Value]:
        if spec.references is None:
            raise SchemaError(f"foreign-key column {spec.name!r} needs a references=(table, column)")
        ref_table, ref_column = spec.references
        if ref_table not in tables:
            raise SchemaError(
                f"column {spec.name!r} references table {ref_table!r} which is not generated yet"
            )
        pool = [value for value in tables[ref_table].column(ref_column) if value is not None]
        if not pool:
            return [None] * rows
        if spec.skew > 0:
            # Zipf-like weighting over the pool: early keys are much more frequent.
            weights = [1.0 / (index + 1) ** spec.skew for index in range(len(pool))]
            return self._rng.choices(pool, weights=weights, k=rows)
        return [self._rng.choice(pool) for _ in range(rows)]

    def _categorical_values(
        self, spec: ColumnSpec, rows: int, existing: Mapping[str, list[Value]]
    ) -> list[Value]:
        categories = (
            list(spec.categories)
            if spec.categories is not None
            else [f"{spec.prefix or spec.name}_{index}" for index in range(spec.cardinality)]
        )
        if spec.derived_from is not None:
            if spec.derived_from not in existing:
                raise SchemaError(
                    f"column {spec.name!r} derives from {spec.derived_from!r} "
                    "which must be declared before it"
                )
            base = existing[spec.derived_from]
            return [
                None if value is None else categories[_stable_hash(value) % len(categories)]
                for value in base
            ]
        if spec.skew > 0:
            weights = [1.0 / (index + 1) ** spec.skew for index in range(len(categories))]
            return self._rng.choices(categories, weights=weights, k=rows)
        return [self._rng.choice(categories) for _ in range(rows)]

    def _numerical_values(
        self, spec: ColumnSpec, rows: int, existing: Mapping[str, list[Value]]
    ) -> list[Value]:
        if spec.derived_from is not None:
            if spec.derived_from not in existing:
                raise SchemaError(
                    f"column {spec.name!r} derives from {spec.derived_from!r} "
                    "which must be declared before it"
                )
            base = existing[spec.derived_from]
            noise_scale = max(1e-9, spec.std)
            values: list[Value] = []
            for value in base:
                if value is None or not isinstance(value, (int, float)):
                    numeric = float(_stable_hash(value) % 1000)
                else:
                    numeric = float(value)
                values.append(round(numeric * 2.0 + self._rng.gauss(0.0, noise_scale), 4))
            return values
        if spec.distribution == "normal":
            return [round(self._rng.gauss(spec.mean, spec.std), 4) for _ in range(rows)]
        return [round(self._rng.uniform(spec.low, spec.high), 4) for _ in range(rows)]

    # ----------------------------------------------------------------- build
    def _build_table(self, spec: TableSpec, tables: Mapping[str, Table]) -> Table:
        columns: dict[str, list[Value]] = {}
        for column in spec.columns:
            if column.kind == "key":
                values = self._key_values(column, spec.rows)
            elif column.kind == "foreign_key":
                values = self._foreign_key_values(column, spec.rows, tables)
            elif column.kind == "numerical":
                values = self._numerical_values(column, spec.rows, columns)
            elif column.kind == "categorical":
                values = self._categorical_values(column, spec.rows, columns)
            else:
                raise SchemaError(f"unknown column kind {column.kind!r} for {column.name!r}")
            columns[column.name] = values
        return Table(spec.name, spec.schema, columns)

    def build(
        self,
        *,
        dirty_tables: Sequence[str] = (),
        dirty_rate: float = 0.0,
        dirty_seed: int = 17,
    ) -> GeneratedWorkload:
        """Generate all tables (in declaration order) and optionally dirty variants."""
        tables: dict[str, Table] = {}
        fds: dict[str, list[FunctionalDependency]] = {}
        for spec in self._specs:
            table = self._build_table(spec, tables)
            tables[spec.name] = table
            fds[spec.name] = spec.planted_fds()

        dirty: dict[str, Table] = {}
        if dirty_rate > 0.0:
            dirty_rng = random.Random(dirty_seed)
            for name in dirty_tables:
                if name not in tables:
                    raise SchemaError(f"cannot dirty unknown table {name!r}")
                table_fds = fds.get(name, [])
                if not table_fds:
                    continue
                corrupted = tables[name]
                per_fd_rate = dirty_rate / len(table_fds)
                for fd in table_fds:
                    corrupted = inject_inconsistency(corrupted, fd, per_fd_rate, dirty_rng)
                dirty[name] = corrupted

        return GeneratedWorkload(name=self.name, tables=tables, fds=fds, dirty_tables=dirty)
