"""Acquisition queries Q1 / Q2 / Q3 for each workload.

The evaluation defines, per dataset, three acquisition queries of short, medium
and long join-path length (2 / 3 / 5 for TPC-H and 3 / 5 / 8 for TPC-E).  Each
query fixes the source attributes (assumed to be owned by the shopper, living
in one source instance) and the target attributes to acquire; the join-path
length is the number of instances the natural join path between them crosses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import UnknownWorkloadError
from repro.workloads.schema_spec import GeneratedWorkload


@dataclass(frozen=True)
class AcquisitionQuery:
    """One evaluation query: source instance + attributes, target attributes.

    Attributes
    ----------
    name:
        Query label (``"Q1"`` / ``"Q2"`` / ``"Q3"``).
    source_instance:
        The instance assumed to be owned by the shopper.
    source_attributes:
        ``A_S`` (attributes of the source instance).
    target_attributes:
        ``A_T`` (attributes to acquire from the marketplace).
    expected_path_length:
        The length of the natural join path connecting sources to targets
        (the paper's short / medium / long classification).
    """

    name: str
    source_instance: str
    source_attributes: tuple[str, ...]
    target_attributes: tuple[str, ...]
    expected_path_length: int

    def involved_attributes(self) -> tuple[str, ...]:
        return self.source_attributes + self.target_attributes


def tpch_queries() -> dict[str, AcquisitionQuery]:
    """Q1 (length 2), Q2 (length 3), Q3 (length 5) on the TPC-H-like workload.

    Q3 mirrors the acquisition result reported in the paper's Table 6
    discussion: orders(totalprice) correlated with region(rname) through
    customer → supplier (via the bridge attribute) → nation → region.
    """
    return {
        "Q1": AcquisitionQuery(
            name="Q1",
            source_instance="orders",
            source_attributes=("totalprice",),
            target_attributes=("mktsegment",),
            expected_path_length=2,
        ),
        "Q2": AcquisitionQuery(
            name="Q2",
            source_instance="orders",
            source_attributes=("totalprice",),
            target_attributes=("nname",),
            expected_path_length=3,
        ),
        "Q3": AcquisitionQuery(
            name="Q3",
            source_instance="orders",
            source_attributes=("totalprice",),
            target_attributes=("rname",),
            expected_path_length=5,
        ),
    }


def tpce_queries() -> dict[str, AcquisitionQuery]:
    """Q1 (length 3), Q2 (length 5), Q3 (length 8) on the TPC-E-like workload."""
    return {
        "Q1": AcquisitionQuery(
            name="Q1",
            source_instance="trade",
            source_attributes=("t_price",),
            target_attributes=("s_issue",),
            expected_path_length=3,
        ),
        "Q2": AcquisitionQuery(
            name="Q2",
            source_instance="trade",
            source_attributes=("t_price",),
            target_attributes=("in_name",),
            expected_path_length=5,
        ),
        "Q3": AcquisitionQuery(
            name="Q3",
            source_instance="settlement",
            source_attributes=("se_amount",),
            target_attributes=("ex_name",),
            expected_path_length=8,
        ),
    }


def queries_for(workload: GeneratedWorkload) -> dict[str, AcquisitionQuery]:
    """The query set matching a generated workload (dispatch on workload name)."""
    if workload.name == "tpch":
        return tpch_queries()
    if workload.name == "tpce":
        return tpce_queries()
    raise UnknownWorkloadError(f"no predefined queries for workload {workload.name!r}")
