"""TPC-E-like synthetic workload (29 tables).

The paper's second benchmark is TPC-E, whose relevant property for the
evaluation is its size and connectivity: 29 instances, between 3 and 28
attributes each, and join paths of length up to 8.  This generator produces a
29-table workload with the same high-level structure — a chain of "market"
entities (exchange → sector → industry → company → security → trades …) plus a
chain of "customer" entities (customer → account → orders …) and several
broker/settlement side tables — so that the I-layer of the join graph has the
connectivity the experiments exercise.  Table names are kept short and generic;
the row counts are laptop-scale and controlled by a ``scale`` knob.
"""

from __future__ import annotations

from repro.workloads.schema_spec import (
    ColumnSpec,
    GeneratedWorkload,
    TableSpec,
    WorkloadBuilder,
)

TPCE_TABLE_NAMES: tuple[str, ...] = (
    "exchange",
    "sector",
    "industry",
    "company",
    "company_competitor",
    "financial",
    "security",
    "daily_market",
    "last_trade",
    "news_item",
    "news_xref",
    "address",
    "zip_code",
    "status_type",
    "taxrate",
    "customer",
    "customer_account",
    "customer_taxrate",
    "account_permission",
    "broker",
    "cash_transaction",
    "charge",
    "commission_rate",
    "holding",
    "holding_history",
    "holding_summary",
    "settlement",
    "trade",
    "watch_item",
)

#: 20 of the 29 tables get inconsistency injected (mirrors the paper's setup).
TPCE_DIRTY_TABLES: tuple[str, ...] = (
    "industry",
    "company",
    "company_competitor",
    "financial",
    "security",
    "daily_market",
    "last_trade",
    "news_item",
    "news_xref",
    "address",
    "customer",
    "customer_account",
    "account_permission",
    "broker",
    "cash_transaction",
    "holding",
    "holding_history",
    "holding_summary",
    "settlement",
    "trade",
)


def _chain_specs(scale: float) -> list[TableSpec]:
    """The market-side chain: exchange → sector → industry → company → security → …"""
    company_rows = max(20, int(120 * scale))
    security_rows = max(30, int(200 * scale))
    trade_rows = max(80, int(700 * scale))
    customer_rows = max(30, int(250 * scale))
    account_rows = max(40, int(300 * scale))
    return [
        TableSpec(
            "exchange",
            rows=4,
            columns=(
                ColumnSpec("exchange_id", kind="key"),
                ColumnSpec("ex_name", kind="categorical", derived_from="exchange_id", prefix="ex", cardinality=4),
                ColumnSpec("ex_open", kind="numerical", low=800.0, high=1000.0),
            ),
        ),
        TableSpec(
            "sector",
            rows=12,
            columns=(
                ColumnSpec("sector_id", kind="key"),
                ColumnSpec("sc_name", kind="categorical", derived_from="sector_id", prefix="sector", cardinality=12),
                ColumnSpec("exchange_id", kind="foreign_key", references=("exchange", "exchange_id")),
            ),
        ),
        TableSpec(
            "industry",
            rows=30,
            columns=(
                ColumnSpec("industry_id", kind="key"),
                ColumnSpec("in_name", kind="categorical", derived_from="industry_id", prefix="ind", cardinality=30),
                ColumnSpec("sector_id", kind="foreign_key", references=("sector", "sector_id")),
            ),
        ),
        TableSpec(
            "company",
            rows=company_rows,
            columns=(
                ColumnSpec("company_id", kind="key"),
                ColumnSpec("co_name", kind="categorical", derived_from="company_id", prefix="co", cardinality=max(20, company_rows)),
                ColumnSpec("industry_id", kind="foreign_key", references=("industry", "industry_id")),
                ColumnSpec("co_rating", kind="categorical", prefix="rating", cardinality=6),
                ColumnSpec("co_founded", kind="numerical", low=1900.0, high=2018.0),
            ),
        ),
        TableSpec(
            "company_competitor",
            rows=max(20, int(100 * scale)),
            columns=(
                ColumnSpec("company_id", kind="foreign_key", references=("company", "company_id")),
                ColumnSpec("competitor_id", kind="foreign_key", references=("company", "company_id")),
                ColumnSpec("industry_id", kind="foreign_key", references=("industry", "industry_id")),
            ),
        ),
        TableSpec(
            "financial",
            rows=max(30, int(150 * scale)),
            columns=(
                ColumnSpec("company_id", kind="foreign_key", references=("company", "company_id")),
                ColumnSpec("fi_year", kind="numerical", low=2010.0, high=2018.0),
                ColumnSpec("fi_revenue", kind="numerical", derived_from="company_id", std=100.0),
                ColumnSpec("fi_assets", kind="numerical", low=1000.0, high=100000.0),
            ),
        ),
        TableSpec(
            "security",
            rows=security_rows,
            columns=(
                ColumnSpec("security_id", kind="key"),
                ColumnSpec("s_symbol", kind="categorical", derived_from="security_id", prefix="sym", cardinality=max(30, security_rows)),
                ColumnSpec("company_id", kind="foreign_key", references=("company", "company_id")),
                ColumnSpec("s_issue", kind="categorical", prefix="issue", cardinality=4),
                ColumnSpec("s_numout", kind="numerical", low=1000.0, high=100000.0),
            ),
        ),
        TableSpec(
            "daily_market",
            rows=max(60, int(500 * scale)),
            columns=(
                ColumnSpec("security_id", kind="foreign_key", references=("security", "security_id"), skew=0.4),
                ColumnSpec("dm_date", kind="numerical", low=1.0, high=365.0),
                ColumnSpec("dm_close", kind="numerical", derived_from="security_id", std=5.0),
                ColumnSpec("dm_volume", kind="numerical", low=100.0, high=100000.0),
            ),
        ),
        TableSpec(
            "last_trade",
            rows=security_rows,
            columns=(
                ColumnSpec("security_id", kind="foreign_key", references=("security", "security_id")),
                ColumnSpec("lt_price", kind="numerical", derived_from="security_id", std=2.0),
                ColumnSpec("lt_volume", kind="numerical", low=0.0, high=50000.0),
            ),
        ),
        TableSpec(
            "news_item",
            rows=max(20, int(120 * scale)),
            columns=(
                ColumnSpec("news_id", kind="key"),
                ColumnSpec("ni_headline", kind="categorical", derived_from="news_id", prefix="news", cardinality=max(20, int(120 * scale))),
                ColumnSpec("ni_sentiment", kind="categorical", prefix="sent", cardinality=3),
            ),
        ),
        TableSpec(
            "news_xref",
            rows=max(20, int(150 * scale)),
            columns=(
                ColumnSpec("news_id", kind="foreign_key", references=("news_item", "news_id")),
                ColumnSpec("company_id", kind="foreign_key", references=("company", "company_id")),
            ),
        ),
        TableSpec(
            "zip_code",
            rows=50,
            columns=(
                ColumnSpec("zip", kind="key", offset=10000),
                ColumnSpec("zc_town", kind="categorical", derived_from="zip", prefix="town", cardinality=40),
                ColumnSpec("zc_division", kind="categorical", derived_from="zc_town", prefix="div", cardinality=10),
            ),
        ),
        TableSpec(
            "address",
            rows=max(40, int(250 * scale)),
            columns=(
                ColumnSpec("address_id", kind="key"),
                ColumnSpec("zip", kind="foreign_key", references=("zip_code", "zip")),
                ColumnSpec("ad_line", kind="categorical", prefix="line", cardinality=60),
            ),
        ),
        TableSpec(
            "status_type",
            rows=5,
            columns=(
                ColumnSpec("status_id", kind="key"),
                ColumnSpec("st_name", kind="categorical", derived_from="status_id", prefix="status", cardinality=5),
                ColumnSpec("st_flag", kind="categorical", categories=("active", "inactive")),
            ),
        ),
        TableSpec(
            "taxrate",
            rows=20,
            columns=(
                ColumnSpec("taxrate_id", kind="key"),
                ColumnSpec("tx_name", kind="categorical", derived_from="taxrate_id", prefix="tax", cardinality=20),
                ColumnSpec("tx_rate", kind="numerical", low=0.0, high=0.5),
            ),
        ),
        TableSpec(
            "customer",
            rows=customer_rows,
            columns=(
                ColumnSpec("customer_id", kind="key"),
                ColumnSpec("c_lastname", kind="categorical", derived_from="customer_id", prefix="cust", cardinality=max(30, customer_rows)),
                ColumnSpec("address_id", kind="foreign_key", references=("address", "address_id")),
                ColumnSpec("c_tier", kind="categorical", categories=("tier1", "tier2", "tier3")),
                ColumnSpec("c_networth", kind="numerical", derived_from="customer_id", std=500.0),
                ColumnSpec("status_id", kind="foreign_key", references=("status_type", "status_id")),
            ),
        ),
        TableSpec(
            "customer_taxrate",
            rows=customer_rows,
            columns=(
                ColumnSpec("customer_id", kind="foreign_key", references=("customer", "customer_id")),
                ColumnSpec("taxrate_id", kind="foreign_key", references=("taxrate", "taxrate_id")),
            ),
        ),
        TableSpec(
            "broker",
            rows=max(10, int(40 * scale)),
            columns=(
                ColumnSpec("broker_id", kind="key"),
                ColumnSpec("b_name", kind="categorical", derived_from="broker_id", prefix="broker", cardinality=max(10, int(40 * scale))),
                ColumnSpec("b_numtrades", kind="numerical", low=0.0, high=10000.0),
                ColumnSpec("status_id", kind="foreign_key", references=("status_type", "status_id")),
            ),
        ),
        TableSpec(
            "customer_account",
            rows=account_rows,
            columns=(
                ColumnSpec("account_id", kind="key"),
                ColumnSpec("customer_id", kind="foreign_key", references=("customer", "customer_id"), skew=0.4),
                ColumnSpec("broker_id", kind="foreign_key", references=("broker", "broker_id")),
                ColumnSpec("ca_balance", kind="numerical", derived_from="customer_id", std=200.0),
                ColumnSpec("ca_taxstatus", kind="categorical", categories=("taxable", "deferred")),
            ),
        ),
        TableSpec(
            "account_permission",
            rows=account_rows,
            columns=(
                ColumnSpec("account_id", kind="foreign_key", references=("customer_account", "account_id")),
                ColumnSpec("ap_level", kind="categorical", categories=("read", "trade", "admin")),
            ),
        ),
        TableSpec(
            "charge",
            rows=15,
            columns=(
                ColumnSpec("charge_id", kind="key"),
                ColumnSpec("ch_type", kind="categorical", derived_from="charge_id", prefix="chtype", cardinality=15),
                ColumnSpec("ch_amount", kind="numerical", low=0.0, high=50.0),
            ),
        ),
        TableSpec(
            "commission_rate",
            rows=30,
            columns=(
                ColumnSpec("commission_id", kind="key"),
                ColumnSpec("cr_tier", kind="categorical", categories=("tier1", "tier2", "tier3")),
                ColumnSpec("cr_rate", kind="numerical", low=0.0, high=0.1),
                ColumnSpec("exchange_id", kind="foreign_key", references=("exchange", "exchange_id")),
            ),
        ),
        TableSpec(
            "trade",
            rows=trade_rows,
            columns=(
                ColumnSpec("trade_id", kind="key"),
                ColumnSpec("account_id", kind="foreign_key", references=("customer_account", "account_id"), skew=0.3),
                ColumnSpec("security_id", kind="foreign_key", references=("security", "security_id"), skew=0.3),
                ColumnSpec("charge_id", kind="foreign_key", references=("charge", "charge_id")),
                ColumnSpec("t_qty", kind="numerical", low=1.0, high=1000.0),
                ColumnSpec("t_price", kind="numerical", derived_from="security_id", std=3.0),
                ColumnSpec("t_type", kind="categorical", categories=("buy", "sell")),
                ColumnSpec("status_id", kind="foreign_key", references=("status_type", "status_id")),
            ),
        ),
        TableSpec(
            "settlement",
            rows=trade_rows,
            columns=(
                ColumnSpec("trade_id", kind="foreign_key", references=("trade", "trade_id")),
                ColumnSpec("se_amount", kind="numerical", derived_from="trade_id", std=10.0),
                ColumnSpec("se_cashtype", kind="categorical", categories=("margin", "cash")),
            ),
        ),
        TableSpec(
            "cash_transaction",
            rows=trade_rows,
            columns=(
                ColumnSpec("trade_id", kind="foreign_key", references=("trade", "trade_id")),
                ColumnSpec("ct_amount", kind="numerical", derived_from="trade_id", std=20.0),
                ColumnSpec("ct_name", kind="categorical", prefix="ct", cardinality=10),
            ),
        ),
        TableSpec(
            "holding",
            rows=max(50, int(350 * scale)),
            columns=(
                ColumnSpec("holding_id", kind="key"),
                ColumnSpec("account_id", kind="foreign_key", references=("customer_account", "account_id")),
                ColumnSpec("security_id", kind="foreign_key", references=("security", "security_id")),
                ColumnSpec("h_qty", kind="numerical", low=1.0, high=5000.0),
                ColumnSpec("h_price", kind="numerical", derived_from="security_id", std=4.0),
            ),
        ),
        TableSpec(
            "holding_history",
            rows=max(60, int(400 * scale)),
            columns=(
                ColumnSpec("holding_id", kind="foreign_key", references=("holding", "holding_id")),
                ColumnSpec("trade_id", kind="foreign_key", references=("trade", "trade_id")),
                ColumnSpec("hh_qty", kind="numerical", low=1.0, high=5000.0),
            ),
        ),
        TableSpec(
            "holding_summary",
            rows=account_rows,
            columns=(
                ColumnSpec("account_id", kind="foreign_key", references=("customer_account", "account_id")),
                ColumnSpec("security_id", kind="foreign_key", references=("security", "security_id")),
                ColumnSpec("hs_qty", kind="numerical", low=1.0, high=10000.0),
            ),
        ),
        TableSpec(
            "watch_item",
            rows=max(60, int(500 * scale)),
            columns=(
                ColumnSpec("customer_id", kind="foreign_key", references=("customer", "customer_id")),
                ColumnSpec("security_id", kind="foreign_key", references=("security", "security_id")),
                ColumnSpec("wi_active", kind="categorical", categories=("yes", "no")),
            ),
        ),
    ]


def tpce_workload(
    *,
    scale: float = 0.15,
    seed: int = 1,
    dirty_rate: float = 0.2,
) -> GeneratedWorkload:
    """Generate the 29-table TPC-E-like workload.

    ``dirty_rate`` controls the inconsistency injected into the 20 corruptible
    tables (0 disables dirty variants); ``scale`` scales row counts.
    """
    builder = WorkloadBuilder("tpce", seed=seed)
    builder.extend(_chain_specs(scale))
    workload = builder.build(
        dirty_tables=TPCE_DIRTY_TABLES if dirty_rate > 0 else (),
        dirty_rate=dirty_rate,
        dirty_seed=seed + 29,
    )
    return workload
