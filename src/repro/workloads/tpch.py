"""TPC-H-like synthetic workload (8 tables).

This reproduces the *structure* of the TPC-H benchmark the paper evaluates on:
eight tables (region, nation, supplier, customer, part, partsupp, orders,
lineitem), wired together through the usual key / foreign-key chains so that
the longest join path has length 7 (e.g. lineitem → partsupp → supplier →
customer chain variants → nation → region).  Row counts are scaled by a
``scale`` knob so that the whole workload generates in well under a second at
the default scale used by the test-suite and benchmarks.

Following Table 6's discussion, an optional "bridge" attribute ``h_segment`` is
added to ``customer`` and ``supplier`` (the paper adds a fake join attribute
``H`` to connect them directly); this keeps the acquisition results comparable
to the paper's reported target graphs.
"""

from __future__ import annotations

from repro.workloads.schema_spec import (
    ColumnSpec,
    GeneratedWorkload,
    TableSpec,
    WorkloadBuilder,
)

TPCH_TABLE_NAMES: tuple[str, ...] = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

#: The 6 tables the paper injects inconsistency into (all but region and nation).
TPCH_DIRTY_TABLES: tuple[str, ...] = (
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)


def _region_spec(scale: float) -> TableSpec:
    return TableSpec(
        "region",
        rows=5,
        columns=(
            ColumnSpec("regionkey", kind="key"),
            ColumnSpec("rname", kind="categorical", derived_from="regionkey", prefix="region", cardinality=5),
            ColumnSpec("rcomment", kind="categorical", prefix="rcom", cardinality=4),
        ),
    )


def _nation_spec(scale: float) -> TableSpec:
    return TableSpec(
        "nation",
        rows=25,
        columns=(
            ColumnSpec("nationkey", kind="key"),
            ColumnSpec("nname", kind="categorical", derived_from="nationkey", prefix="nation", cardinality=25),
            ColumnSpec("regionkey", kind="foreign_key", references=("region", "regionkey")),
            ColumnSpec("ncomment", kind="categorical", prefix="ncom", cardinality=5),
        ),
    )


def _supplier_spec(scale: float) -> TableSpec:
    rows = max(10, int(100 * scale))
    return TableSpec(
        "supplier",
        rows=rows,
        columns=(
            ColumnSpec("suppkey", kind="key"),
            ColumnSpec("sname", kind="categorical", derived_from="suppkey", prefix="supp", cardinality=max(10, rows)),
            ColumnSpec("nationkey", kind="foreign_key", references=("nation", "nationkey")),
            ColumnSpec("h_segment", kind="categorical", prefix="seg", cardinality=8),
            ColumnSpec("sacctbal", kind="numerical", low=-999.0, high=9999.0),
            ColumnSpec("sphone", kind="categorical", prefix="phone", cardinality=50),
        ),
    )


def _customer_spec(scale: float) -> TableSpec:
    rows = max(20, int(300 * scale))
    return TableSpec(
        "customer",
        rows=rows,
        columns=(
            ColumnSpec("custkey", kind="key"),
            ColumnSpec("cname", kind="categorical", derived_from="custkey", prefix="cust", cardinality=max(20, rows)),
            ColumnSpec("nationkey", kind="foreign_key", references=("nation", "nationkey")),
            ColumnSpec("h_segment", kind="categorical", prefix="seg", cardinality=8),
            ColumnSpec("mktsegment", kind="categorical", prefix="mkt", cardinality=5),
            ColumnSpec("cacctbal", kind="numerical", low=-999.0, high=9999.0),
        ),
    )


def _part_spec(scale: float) -> TableSpec:
    rows = max(20, int(200 * scale))
    return TableSpec(
        "part",
        rows=rows,
        columns=(
            ColumnSpec("partkey", kind="key"),
            ColumnSpec("pname", kind="categorical", derived_from="partkey", prefix="part", cardinality=max(20, rows)),
            ColumnSpec("brand", kind="categorical", prefix="brand", cardinality=10),
            ColumnSpec("ptype", kind="categorical", derived_from="brand", prefix="type", cardinality=25),
            ColumnSpec("retailprice", kind="numerical", low=900.0, high=2000.0),
        ),
    )


def _partsupp_spec(scale: float) -> TableSpec:
    rows = max(40, int(400 * scale))
    return TableSpec(
        "partsupp",
        rows=rows,
        columns=(
            ColumnSpec("partkey", kind="foreign_key", references=("part", "partkey")),
            ColumnSpec("suppkey", kind="foreign_key", references=("supplier", "suppkey")),
            ColumnSpec("ps_grade", kind="categorical", derived_from="partkey", prefix="grade", cardinality=5),
            ColumnSpec("availqty", kind="numerical", low=1.0, high=9999.0),
            ColumnSpec("supplycost", kind="numerical", low=1.0, high=1000.0),
        ),
    )


def _orders_spec(scale: float) -> TableSpec:
    rows = max(60, int(600 * scale))
    return TableSpec(
        "orders",
        rows=rows,
        columns=(
            ColumnSpec("orderkey", kind="key"),
            ColumnSpec("custkey", kind="foreign_key", references=("customer", "custkey"), skew=0.5),
            ColumnSpec("orderstatus", kind="categorical", categories=("O", "F", "P")),
            ColumnSpec("totalprice", kind="numerical", derived_from="custkey", std=50.0),
            ColumnSpec("orderpriority", kind="categorical", derived_from="orderstatus", prefix="prio", cardinality=5),
        ),
    )


def _lineitem_spec(scale: float) -> TableSpec:
    rows = max(120, int(1200 * scale))
    return TableSpec(
        "lineitem",
        rows=rows,
        columns=(
            ColumnSpec("orderkey", kind="foreign_key", references=("orders", "orderkey"), skew=0.3),
            ColumnSpec("partkey", kind="foreign_key", references=("part", "partkey")),
            ColumnSpec("suppkey", kind="foreign_key", references=("supplier", "suppkey")),
            ColumnSpec("quantity", kind="numerical", low=1.0, high=50.0),
            ColumnSpec("extendedprice", kind="numerical", derived_from="quantity", std=10.0),
            ColumnSpec("discount", kind="numerical", low=0.0, high=0.1),
            ColumnSpec("returnflag", kind="categorical", categories=("A", "N", "R")),
            ColumnSpec("linestatus", kind="categorical", derived_from="returnflag", categories=("O", "F")),
            ColumnSpec("shipmode", kind="categorical", prefix="mode", cardinality=7),
        ),
    )


def tpch_workload(
    *,
    scale: float = 0.2,
    seed: int = 0,
    dirty_rate: float = 0.3,
    include_bridge_attribute: bool = True,
) -> GeneratedWorkload:
    """Generate the TPC-H-like workload.

    Parameters
    ----------
    scale:
        Row-count multiplier (1.0 ≈ a few thousand rows across all tables).
    seed:
        RNG seed for deterministic generation.
    dirty_rate:
        Inconsistency injection rate for the six corruptible tables (the paper
        uses 30 %); 0 disables dirty variants.
    include_bridge_attribute:
        Keep the fake join attribute ``h_segment`` on customer/supplier
        (mirrors the paper's added ``H`` attribute).  When ``False`` the
        attribute is dropped from both tables.
    """
    builder = WorkloadBuilder("tpch", seed=seed)
    builder.extend(
        [
            _region_spec(scale),
            _nation_spec(scale),
            _supplier_spec(scale),
            _customer_spec(scale),
            _part_spec(scale),
            _partsupp_spec(scale),
            _orders_spec(scale),
            _lineitem_spec(scale),
        ]
    )
    workload = builder.build(
        dirty_tables=TPCH_DIRTY_TABLES if dirty_rate > 0 else (),
        dirty_rate=dirty_rate,
        dirty_seed=seed + 17,
    )
    if not include_bridge_attribute:
        for name in ("supplier", "customer"):
            table = workload.tables[name]
            keep = [a for a in table.schema.names if a != "h_segment"]
            workload.tables[name] = table.project(keep, name=name)
            if name in workload.dirty_tables:
                dirty = workload.dirty_tables[name]
                workload.dirty_tables[name] = dirty.project(keep, name=name)
    return workload
