"""A generic random "galaxy schema" workload generator.

Property-based tests and ablation benchmarks need workloads whose shape
(number of instances, fan-out, join-path length) can be varied freely.  The
galaxy generator builds a random tree of tables: a root dimension table plus
children that reference their parent through a foreign key, each with a mix of
categorical and numerical payload columns (including one derived column per
table so that every table has at least one FD to discover and to corrupt).
"""

from __future__ import annotations

import random

from repro.exceptions import WorkloadError

from repro.workloads.schema_spec import (
    ColumnSpec,
    GeneratedWorkload,
    TableSpec,
    WorkloadBuilder,
)


def random_galaxy_workload(
    *,
    num_tables: int = 6,
    rows_per_table: int = 120,
    seed: int = 0,
    dirty_rate: float = 0.0,
    branching: int = 2,
) -> GeneratedWorkload:
    """Generate a random tree-shaped workload of ``num_tables`` tables.

    Table ``t0`` is the root; every other table ``ti`` references a previously
    generated table, chosen so that each parent has at most ``branching``
    children (falling back to the most recent table otherwise), which keeps the
    join graph connected and controls its depth.
    """
    if num_tables < 1:
        raise WorkloadError("num_tables must be >= 1")
    rng = random.Random(seed)
    builder = WorkloadBuilder("galaxy", seed=seed)

    child_count: dict[int, int] = {}
    specs: list[TableSpec] = []
    for index in range(num_tables):
        name = f"t{index}"
        columns: list[ColumnSpec] = [ColumnSpec(f"{name}_key", kind="key")]
        if index > 0:
            candidates = [
                parent
                for parent in range(index)
                if child_count.get(parent, 0) < branching
            ]
            parent = rng.choice(candidates) if candidates else index - 1
            child_count[parent] = child_count.get(parent, 0) + 1
            columns.append(
                ColumnSpec(
                    f"t{parent}_key",
                    kind="foreign_key",
                    references=(f"t{parent}", f"t{parent}_key"),
                    skew=0.3,
                )
            )
        columns.extend(
            [
                ColumnSpec(f"{name}_cat", kind="categorical", prefix=f"{name}c", cardinality=6),
                ColumnSpec(
                    f"{name}_label",
                    kind="categorical",
                    derived_from=f"{name}_cat",
                    prefix=f"{name}l",
                    cardinality=4,
                ),
                ColumnSpec(f"{name}_value", kind="numerical", low=0.0, high=100.0),
            ]
        )
        specs.append(TableSpec(name, rows=rows_per_table, columns=columns))

    builder.extend(specs)
    dirty_tables = tuple(spec.name for spec in specs if dirty_rate > 0)
    return builder.build(dirty_tables=dirty_tables, dirty_rate=dirty_rate, dirty_seed=seed + 3)
