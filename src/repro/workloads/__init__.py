"""Workload generators and acquisition queries for the evaluation.

The paper evaluates on the TPC-H (8 tables) and TPC-E (29 tables) benchmarks.
The official data generators and multi-million-row instances are not available
here, so this package provides laptop-scale synthetic generators that preserve
what the algorithms actually consume: the schemas, the key/foreign-key join
paths (length up to 7 for TPC-H-like, up to 8 for TPC-E-like), per-table
functional dependencies, and injectable inconsistency.

``schema_spec``
    The declarative table-specification machinery shared by both generators.
``tpch``
    The 8-table TPC-H-like workload.
``tpce``
    The 29-table TPC-E-like workload.
``queries``
    The acquisition queries Q1/Q2/Q3 (short / medium / long join paths) for
    each workload.
``galaxy``
    A generic random "galaxy schema" generator used by property-based tests.
"""

from repro.workloads.schema_spec import (
    ColumnSpec,
    GeneratedWorkload,
    TableSpec,
    WorkloadBuilder,
)
from repro.workloads.tpch import tpch_workload, TPCH_TABLE_NAMES
from repro.workloads.tpce import tpce_workload, TPCE_TABLE_NAMES
from repro.workloads.queries import AcquisitionQuery, tpch_queries, tpce_queries
from repro.workloads.galaxy import random_galaxy_workload

__all__ = [
    "ColumnSpec",
    "TableSpec",
    "WorkloadBuilder",
    "GeneratedWorkload",
    "tpch_workload",
    "TPCH_TABLE_NAMES",
    "tpce_workload",
    "TPCE_TABLE_NAMES",
    "AcquisitionQuery",
    "tpch_queries",
    "tpce_queries",
    "random_galaxy_workload",
]
