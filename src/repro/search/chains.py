"""Parallel multi-chain MCMC search (the ROADMAP's "parallel MCMC chains").

Algorithm 1 of the paper is a single Metropolis walk.  On multi-modal
AS-layers one walk can stall in a local optimum, and a single chain leaves
multi-core hardware idle, so :class:`ChainScheduler` runs ``n`` independently
seeded walks and keeps the best feasible target graph across all of them:

* **Deterministic seeding** — every chain's seed is derived from the base seed
  by :func:`chain_seed` (chain 0 keeps the base seed), so the outcome of a
  multi-chain search depends only on ``(seed, chains)``: never on the
  executor, the scheduling order, or the columnar backend.
* **Shared caches** — chains explore overlapping candidate sets, so the
  evaluation memo table and the per-edge join-informativeness cache are shared.
  For the ``serial`` and ``thread`` executors the chains literally share two
  :class:`LockStripedCache` instances (lock striping keeps thread contention
  per-bucket); the ``process`` executor gives each worker private caches and
  merges them afterwards.  Sharing is safe because every cached value is
  deterministic: a chain served from another chain's entry computes nothing
  different, it just computes less.
* **Aggregation** — the per-chain :class:`~repro.search.mcmc.MCMCResult`\\ s
  are folded into a :class:`MultiChainResult` that duck-types ``MCMCResult``
  (``best_graph``, ``require_feasible``, cache-hit accounting, ...), so the
  two-step heuristic, :class:`~repro.core.dance.DANCE`, and the CLI surface
  multi-chain runs without special cases.

Stochastic re-sampling hooks stay correct: each chain receives its own deep
copy of the hook (reset to its seeded state when it exposes ``reset()``), and
evaluations during which a hook actually fired are never memoised, so the
shared caches only ever hold hook-independent values.  This relies on one
property custom hooks must share with
:class:`~repro.sampling.resampling.ResamplingPolicy`: *whether* a hook fires
on a given intermediate (and whether it consumes randomness) must be a
deterministic function of that intermediate — e.g. a size threshold.  A hook
that draws from its RNG even when it returns its input unchanged would let a
cache hit (which skips hook invocations entirely) desynchronise the hook's
RNG between executors, breaking cross-executor bit-identity.
"""

from __future__ import annotations

import copy
import hashlib
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.exceptions import InfeasibleAcquisitionError, SearchError
from repro.graph.join_graph import JoinGraph
from repro.graph.target import TargetGraph, TargetGraphEvaluation
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.search import shm as _shm
from repro.search.mcmc import EXECUTORS, MCMCConfig, MCMCResult, mcmc_search
from repro.search.plan import ExecutionPlan

_MAX_WORKERS = 8


def chain_seed(base_seed: int, chain_index: int) -> int:
    """The deterministic seed of chain ``chain_index`` for a given base seed.

    Chain 0 keeps the base seed, so a one-chain multi-chain search reproduces
    the single-chain walk bit-for-bit.  Later chains hash ``(base_seed,
    index)`` through blake2b — stable across processes and Python versions
    (unlike ``hash()``), and collision-free for any realistic chain count.
    """
    if chain_index < 0:
        raise SearchError(f"chain_index must be >= 0, got {chain_index}")
    if chain_index == 0:
        return base_seed
    digest = hashlib.blake2b(
        f"{base_seed}:{chain_index}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class LockStripedCache:
    """A dict striped over independently-locked buckets.

    Supports the exact mapping surface the search hot path uses — ``get`` and
    item assignment — plus ``len``.  Keys are routed to a stripe by hash, so
    concurrent chains touching different candidates rarely contend on the
    same lock.  (CPython's GIL already serialises single dict operations; the
    stripes make the structure safe by construction rather than by
    implementation detail, and keep the design portable to free-threaded
    builds.)
    """

    __slots__ = ("_stripes", "_locks")

    def __init__(self, stripes: int = 16) -> None:
        if stripes < 1:
            raise SearchError(f"stripes must be >= 1, got {stripes}")
        # guarded-by: self._locks[index]
        self._stripes: list[dict] = [{} for _ in range(stripes)]
        self._locks = [threading.Lock() for _ in range(stripes)]

    def _index(self, key) -> int:
        # dancelint: disable=DET102,CON201 -- stripe routing: the salted hash
        # picks which stripe guards a key (it never orders results, derives
        # seeds, or crosses a process boundary), and the stripe *list* is
        # immutable after __init__ — only the dicts inside it need the locks.
        return hash(key) % len(self._stripes)

    def get(self, key, default=None):
        index = self._index(key)
        with self._locks[index]:
            return self._stripes[index].get(key, default)

    def __setitem__(self, key, value) -> None:
        index = self._index(key)
        with self._locks[index]:
            self._stripes[index][key] = value

    def __contains__(self, key) -> bool:
        index = self._index(key)
        with self._locks[index]:
            return key in self._stripes[index]

    def __len__(self) -> int:
        # dancelint: disable=CON201 -- racy-but-consistent gauge: each len()
        # reads one dict atomically under the GIL; exactness is not promised.
        return sum(len(stripe) for stripe in self._stripes)

    def update(self, items: Mapping) -> None:
        for key, value in items.items():
            self[key] = value

    def items(self) -> list[tuple]:
        """A point-in-time ``(key, value)`` snapshot across all stripes.

        Each stripe is copied under its own lock (there is no global lock to
        take), so the snapshot is per-stripe consistent — exactly what cache
        checkpointing needs: every entry ever observed is valid forever, only
        entries written mid-snapshot may be missed.
        """
        snapshot: list[tuple] = []
        # dancelint: disable=CON201 -- iterates the immutable stripe list;
        # each stripe's entries are copied under that stripe's own lock.
        for stripe, lock in zip(self._stripes, self._locks):
            with lock:
                snapshot.extend(stripe.items())
        return snapshot


@dataclass
class MultiChainResult:
    """Aggregate outcome of a multi-chain MCMC search.

    Duck-types :class:`~repro.search.mcmc.MCMCResult` (``best_graph``,
    ``best_evaluation``, ``feasible``, ``require_feasible``, step and
    cache-hit counters), so every existing consumer of the single-chain result
    works unchanged, and adds the per-chain view: ``chain_results``,
    ``best_chain_index``, per-chain correlations and traces.

    The best chain is the feasible chain with the highest best correlation,
    ties broken by the lowest chain index — a deterministic rule, so the
    aggregate is independent of executor scheduling.
    """

    chain_results: list[MCMCResult] = field(default_factory=list)
    best_chain_index: int | None = None
    executor: str = "serial"
    evaluation_cache_size: int = 0
    ji_cache_size: int = 0
    # Shared-store pools only (see repro.search.shm): summed per-call worker
    # session accounting — cold_loads / resyncs / deltas_applied.  Empty for
    # every other executor path.
    worker_stats: dict = field(default_factory=dict)

    # ------------------------------------------------------------ aggregate
    @property
    def n_chains(self) -> int:
        return len(self.chain_results)

    @property
    def best_chain(self) -> MCMCResult | None:
        if self.best_chain_index is None:
            return None
        return self.chain_results[self.best_chain_index]

    @property
    def best_graph(self) -> TargetGraph | None:
        best = self.best_chain
        return None if best is None else best.best_graph

    @property
    def best_evaluation(self) -> TargetGraphEvaluation | None:
        best = self.best_chain
        return None if best is None else best.best_evaluation

    @property
    def feasible(self) -> bool:
        return self.best_graph is not None

    def require_feasible(self) -> tuple[TargetGraph, TargetGraphEvaluation]:
        best = self.best_chain
        if best is None:
            raise InfeasibleAcquisitionError(
                "no MCMC chain found a target graph satisfying the constraints"
            )
        return best.require_feasible()

    # ------------------------------------------------------------- counters
    @property
    def iterations(self) -> int:
        return sum(chain.iterations for chain in self.chain_results)

    @property
    def accepted_steps(self) -> int:
        return sum(chain.accepted_steps for chain in self.chain_results)

    @property
    def feasible_steps(self) -> int:
        return sum(chain.feasible_steps for chain in self.chain_results)

    @property
    def evaluation_cache_hits(self) -> int:
        return sum(chain.evaluation_cache_hits for chain in self.chain_results)

    @property
    def evaluation_cache_misses(self) -> int:
        return sum(chain.evaluation_cache_misses for chain in self.chain_results)

    @property
    def evaluation_cache_hit_rate(self) -> float:
        """Fraction of candidate evaluations (across all chains) served from cache."""
        total = self.evaluation_cache_hits + self.evaluation_cache_misses
        if total == 0:
            return 0.0
        return self.evaluation_cache_hits / total

    # ------------------------------------------------------------ per chain
    @property
    def chain_correlations(self) -> list[float | None]:
        """Best correlation per chain (``None`` for infeasible chains)."""
        return [
            None if chain.best_evaluation is None else chain.best_evaluation.correlation
            for chain in self.chain_results
        ]

    @property
    def traces(self) -> list[list[float]]:
        """Per-chain correlation traces (empty unless ``record_trace`` was on)."""
        return [chain.trace for chain in self.chain_results]

    @property
    def trace(self) -> list[float]:
        """The best chain's trace — the single-chain-compatible view."""
        best = self.best_chain
        return [] if best is None else best.trace


def _chain_configs(config: MCMCConfig) -> list[MCMCConfig]:
    """One single-chain config per chain, with deterministically derived seeds."""
    return [
        replace(config, chains=1, executor="serial", seed=chain_seed(config.seed, index))
        for index in range(config.chains)
    ]


def _chain_hook(intermediate_hook, chain_index: int):
    """An independent, reset copy of the re-sampling hook for one chain.

    Chains must not share mutable hook state (a shared RNG would make results
    depend on chain scheduling).  Chain 0 keeps a reset deep copy too, so its
    walk matches a fresh single-chain run with the same hook.
    """
    if intermediate_hook is None:
        return None
    hook = copy.deepcopy(intermediate_hook)
    reset = getattr(hook, "reset", None)
    if callable(reset):
        reset()
    return hook


def _run_chain(payload: tuple) -> tuple[MCMCResult, dict, dict]:
    """Run one chain with private caches; return the result and its caches.

    Module-level so the process executor can pickle it.  The private caches
    are returned for merging — under the process executor this is the only
    way cache contents flow back to the scheduler.
    """
    (
        join_graph,
        initial,
        tables,
        source_attributes,
        target_attributes,
        fds,
        budget,
        max_weight,
        min_quality,
        config,
        intermediate_hook,
    ) = payload
    evaluation_cache: dict = {}
    ji_cache: dict = {}
    result = mcmc_search(
        join_graph,
        initial,
        tables,
        source_attributes,
        target_attributes,
        fds,
        budget=budget,
        max_weight=max_weight,
        min_quality=min_quality,
        config=config,
        intermediate_hook=intermediate_hook,
        evaluation_cache=evaluation_cache,
        ji_cache=ji_cache,
    )
    return result, evaluation_cache, ji_cache


# Worker-side state of persistent process pools, keyed by state token.  A pool
# built by :func:`process_chain_pool` preloads (join graph, fds) into every
# worker once, at pool creation; chain payloads then reference tables by name
# instead of re-pickling the graph and the sample tables on every
# ``mcmc_search`` call (the dominant per-call cost of the process executor).
_WORKER_STATE: dict[str, tuple] = {}


def _load_worker_state(token: str, join_graph, fds) -> None:
    """Process-pool initializer: stash the heavy shared objects once per worker."""
    _WORKER_STATE[token] = (join_graph, tuple(fds))


def _run_chain_from_state(payload: tuple) -> tuple[MCMCResult, dict, dict]:
    """Run one chain against the preloaded worker state (light payload)."""
    (
        token,
        table_names,
        initial,
        source_attributes,
        target_attributes,
        budget,
        max_weight,
        min_quality,
        config,
        intermediate_hook,
    ) = payload
    join_graph, fds = _WORKER_STATE[token]
    tables = {name: join_graph.sample(name) for name in table_names}
    return _run_chain(
        (
            join_graph,
            initial,
            tables,
            source_attributes,
            target_attributes,
            fds,
            budget,
            max_weight,
            min_quality,
            config,
            intermediate_hook,
        )
    )


def _preload_shared_worker(spec: "_shm.WorkerSpec") -> None:
    """Shared-store pool initializer: attach and materialize once per worker.

    Failures are deliberately swallowed — the first chain call re-attaches
    lazily and surfaces the real error through the future instead of leaving
    the pool permanently broken from its initializer."""
    try:
        _shm.ensure_session(spec)
    except Exception:  # dancelint: disable=ERR301 -- pool initializer must never raise
        pass


def _run_chain_shared(payload: tuple) -> tuple[MCMCResult, dict, dict, dict]:
    """Run one chain against the shared-memory worker session (see shm.py).

    Unlike :func:`_run_chain_from_state`, the worker state is *versioned*:
    ``ensure_session`` applies any published deltas before the walk, so a
    warm pool survives catalog updates without teardown.  The evaluation / JI
    memos persist inside the worker across calls (plain dicts — no lock
    traffic); only the entries this call *added* are returned for merging, so
    warm calls ship back almost nothing."""
    (
        spec,
        table_names,
        initial,
        source_attributes,
        target_attributes,
        budget,
        max_weight,
        min_quality,
        config,
        intermediate_hook,
        memo_key,
    ) = payload
    session, stats = _shm.ensure_session(spec)
    join_graph = session.graph
    tables = {name: join_graph.sample(name) for name in table_names}
    evaluation_cache = session.evaluation_cache(memo_key)
    ji_cache = session.ji_cache if memo_key is not None else {}
    known_evaluations = set(evaluation_cache)
    known_ji = set(ji_cache)
    result = mcmc_search(
        join_graph,
        initial,
        tables,
        source_attributes,
        target_attributes,
        session.fds,
        budget=budget,
        max_weight=max_weight,
        min_quality=min_quality,
        config=config,
        intermediate_hook=intermediate_hook,
        evaluation_cache=evaluation_cache,
        ji_cache=ji_cache,
    )
    evaluation_delta = {
        key: evaluation_cache[key]
        for key in evaluation_cache.keys() - known_evaluations
    }
    ji_delta = {key: ji_cache[key] for key in ji_cache.keys() - known_ji}
    return result, evaluation_delta, ji_delta, stats


def _run_chain_batch(batch: tuple) -> list[tuple]:
    """Run a contiguous chunk of chain payloads inside one worker task.

    Ships several chains per IPC round-trip; ``worker`` is one of the
    module-level chain runners (they pickle by reference)."""
    worker, payloads = batch
    return [worker(payload) for payload in payloads]


def shared_chain_pool(
    join_graph: JoinGraph,
    fds: Sequence[FunctionalDependency],
    *,
    token: str,
    max_workers: int = _MAX_WORKERS,
    version: int = 0,
    share_worker_caches: bool = True,
) -> "tuple[ProcessPoolExecutor, _shm.SharedChainState]":
    """A persistent process pool fed from a shared-memory column store.

    The zero-copy counterpart of :func:`process_chain_pool`: instead of
    pickling the join graph into every worker, the encoded columnar state is
    published once into ``multiprocessing.shared_memory`` and workers map the
    code arrays read-only.  The returned
    :class:`~repro.search.shm.SharedChainState` is the pool state to hand to
    :class:`ChainScheduler` *and* the version manager: publish deltas on
    catalog changes instead of rebuilding the pool, and ``close()`` it after
    the pool shuts down to unlink the segments."""
    state = _shm.SharedChainState(
        join_graph,
        fds,
        token=token,
        version=version,
        share_worker_caches=share_worker_caches,
    )
    pool = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_preload_shared_worker,
        initargs=(state.spec(),),
    )
    return pool, state


@dataclass(frozen=True)
class ChainPoolState:
    """What a persistent process pool's workers were preloaded with.

    ``token`` identifies the state inside the workers; ``join_graph`` is the
    parent-side object the workers hold a pickled copy of, and ``revision``
    the graph's mutation counter at pickling time.  The scheduler sends light
    payloads only when the call's graph *is* this object at the *same
    revision* (identity alone cannot detect in-place mutation via
    ``JoinGraph.add_instance``) and every evaluation table *is* the graph's
    own sample — any drift (a refreshed or mutated graph, caller-supplied
    evaluation tables, different FDs) falls back to full payloads, so stale
    worker state can never change a result.
    """

    token: str
    join_graph: JoinGraph
    revision: int = 0
    fds: tuple[FunctionalDependency, ...] = ()

    def covers(
        self,
        join_graph: JoinGraph,
        tables: Mapping[str, Table],
        fds: Sequence[FunctionalDependency],
    ) -> bool:
        if join_graph is not self.join_graph or tuple(fds) != self.fds:
            return False
        if join_graph.revision != self.revision:
            return False
        return all(
            name in join_graph and tables[name] is join_graph.sample(name)
            for name in tables
        )


def process_chain_pool(
    join_graph: JoinGraph,
    fds: Sequence[FunctionalDependency],
    *,
    token: str,
    max_workers: int = _MAX_WORKERS,
) -> tuple[ProcessPoolExecutor, ChainPoolState]:
    """A persistent process pool with (join graph, fds) preloaded into workers.

    Returns the pool and the :class:`ChainPoolState` to hand to
    :class:`ChainScheduler`; the caller owns the pool's lifetime (the
    scheduler never shuts down an external pool).  Recreate the pool whenever
    the join graph is refreshed — the state only ``covers`` the exact graph
    object it was built from, so a stale pool degrades to full payloads
    rather than producing wrong results.
    """
    fds = tuple(fds)
    pool = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_load_worker_state,
        initargs=(token, join_graph, fds),
    )
    state = ChainPoolState(
        token=token, join_graph=join_graph, revision=join_graph.revision, fds=fds
    )
    return pool, state


class ChainScheduler:
    """Runs ``chains`` independently-seeded MCMC walks under one executor.

    Parameters
    ----------
    chains:
        Number of walks.  ``1`` is allowed and reproduces the single-chain
        search exactly (chain 0 keeps the base seed).
    executor:
        ``"serial"``, ``"thread"``, or ``"process"`` (see module docstring).
    max_workers:
        Pool size cap for the thread / process executors; defaults to
        ``min(chains, 8)``.  Ignored when an external ``pool`` is supplied.
    pool:
        An externally-owned :class:`concurrent.futures.Executor` serving the
        thread / process chains.  The scheduler never shuts it down, so a
        long-lived caller (the acquisition service) can amortise pool startup
        across many ``mcmc_search`` calls.  ``None`` (the default) creates and
        disposes a private pool per :meth:`run`, the one-shot behaviour.
    pool_state:
        The state of a persistent process pool: a :class:`ChainPoolState`
        from :func:`process_chain_pool` (pickled worker state) or a
        :class:`~repro.search.shm.SharedChainState` from
        :func:`shared_chain_pool` (versioned shared-memory store).  When it
        covers the call's graph and tables, chain payloads reference tables
        by name instead of pickling the graph and samples per chain;
        otherwise full payloads are sent (identical results, just slower).
        Meaningless without ``pool``.
    plan:
        An :class:`~repro.search.plan.ExecutionPlan` supplying defaults for
        ``chains`` / ``executor`` / ``max_workers`` in one value object;
        explicitly-passed arguments win over the plan's fields.
    """

    def __init__(
        self,
        chains: int | None = None,
        executor: str | None = None,
        *,
        max_workers: int | None = None,
        pool: Executor | None = None,
        pool_state: "ChainPoolState | _shm.SharedChainState | None" = None,
        plan: ExecutionPlan | None = None,
    ) -> None:
        if plan is not None:
            chains = plan.chains if chains is None else chains
            executor = plan.executor if executor is None else executor
            max_workers = plan.resolved_workers() if max_workers is None else max_workers
        if chains is None:
            raise SearchError("ChainScheduler needs chains (directly or via plan=)")
        executor = executor or "serial"
        if chains < 1:
            raise SearchError(f"chains must be >= 1, got {chains}")
        if executor not in EXECUTORS:
            raise SearchError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.chains = chains
        self.executor = executor
        self.max_workers = max_workers
        self.pool = pool
        self.pool_state = pool_state

    def _pool_size(self) -> int:
        if self.pool is not None:
            width = getattr(self.pool, "_max_workers", None)
            if width:
                return max(1, min(width, self.chains))
        if self.max_workers is not None:
            return max(1, min(self.max_workers, self.chains))
        return min(self.chains, _MAX_WORKERS)

    def run(
        self,
        join_graph: JoinGraph,
        initial: TargetGraph,
        tables: Mapping[str, Table],
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
        fds: Sequence[FunctionalDependency],
        *,
        budget: float,
        max_weight: float = float("inf"),
        min_quality: float = 0.0,
        config: MCMCConfig | None = None,
        intermediate_hook=None,
        evaluation_cache=None,
        ji_cache=None,
    ) -> MultiChainResult:
        """Run all chains and fold their results into a :class:`MultiChainResult`.

        Accepts the same arguments as :func:`repro.search.mcmc.mcmc_search`;
        ``config.chains`` is overridden by the scheduler's own chain count.
        Caller-supplied ``evaluation_cache`` / ``ji_cache`` mappings are used
        directly by the serial and thread executors (pass thread-safe
        mappings, e.g. :class:`LockStripedCache`, for ``thread``); the
        process executor merges each worker's private caches into them after
        the run, so contents survive for subsequent searches either way.
        """
        config = config or MCMCConfig()
        configs = _chain_configs(replace(config, chains=self.chains))
        covered = (
            self.executor == "process"
            and self.pool is not None
            and self.pool_state is not None
            and self.pool_state.covers(join_graph, tables, fds)
        )
        shared_state = (
            self.pool_state
            if covered and isinstance(self.pool_state, _shm.SharedChainState)
            else None
        )
        use_light = covered and shared_state is None
        if shared_state is not None:
            spec = shared_state.spec()
            # Namespacing the worker-persistent evaluation memo on the request
            # attributes mirrors the service's per-signature caches; the
            # remaining validity dimensions (samples, fds, pricing) are pinned
            # by the session version, which ensure_session brings up to date.
            memo_key = (
                (tuple(source_attributes), tuple(target_attributes))
                if shared_state.share_worker_caches
                else None
            )
            payloads = [
                (
                    spec,
                    tuple(sorted(tables)),
                    initial,
                    source_attributes,
                    target_attributes,
                    budget,
                    max_weight,
                    min_quality,
                    chain_config,
                    _chain_hook(intermediate_hook, index),
                    memo_key,
                )
                for index, chain_config in enumerate(configs)
            ]
        elif use_light:
            payloads = [
                (
                    self.pool_state.token,
                    tuple(sorted(tables)),
                    initial,
                    source_attributes,
                    target_attributes,
                    budget,
                    max_weight,
                    min_quality,
                    chain_config,
                    _chain_hook(intermediate_hook, index),
                )
                for index, chain_config in enumerate(configs)
            ]
        else:
            payloads = [
                (
                    join_graph,
                    initial,
                    tables,
                    source_attributes,
                    target_attributes,
                    fds,
                    budget,
                    max_weight,
                    min_quality,
                    chain_config,
                    _chain_hook(intermediate_hook, index),
                )
                for index, chain_config in enumerate(configs)
            ]

        worker_stats: dict = {}
        if self.executor == "process":
            if shared_state is not None:
                worker = _run_chain_shared
            elif use_light:
                worker = _run_chain_from_state
            else:
                worker = _run_chain
            chain_results, evaluation_cache, ji_cache = self._run_process(
                payloads,
                evaluation_cache,
                ji_cache,
                worker=worker,
                shared_state=shared_state,
                worker_stats=worker_stats,
            )
        else:
            chain_results, evaluation_cache, ji_cache = self._run_shared(
                payloads, evaluation_cache, ji_cache
            )

        return MultiChainResult(
            chain_results=chain_results,
            best_chain_index=_best_chain_index(chain_results),
            executor=self.executor,
            evaluation_cache_size=len(evaluation_cache),
            ji_cache_size=len(ji_cache),
            worker_stats=worker_stats,
        )

    # ------------------------------------------------------------ executors
    def _run_shared(self, payloads: list[tuple], evaluation_cache, ji_cache):
        """Serial / thread execution over literally shared caches.

        Only the thread pool needs lock striping; serial chains share plain
        dicts so the hot loop pays no lock traffic.
        """
        threaded = self.executor == "thread" and self.chains > 1
        if evaluation_cache is None:
            evaluation_cache = LockStripedCache() if threaded else {}
        if ji_cache is None:
            ji_cache = LockStripedCache() if threaded else {}

        def run_one(payload: tuple) -> MCMCResult:
            (
                join_graph,
                initial,
                tables,
                source_attributes,
                target_attributes,
                fds,
                budget,
                max_weight,
                min_quality,
                chain_config,
                hook,
            ) = payload
            return mcmc_search(
                join_graph,
                initial,
                tables,
                source_attributes,
                target_attributes,
                fds,
                budget=budget,
                max_weight=max_weight,
                min_quality=min_quality,
                config=chain_config,
                intermediate_hook=hook,
                evaluation_cache=evaluation_cache,
                ji_cache=ji_cache,
            )

        if self.executor == "thread" and self.chains > 1:
            if self.pool is not None:
                chain_results = list(self.pool.map(run_one, payloads))
            else:
                with ThreadPoolExecutor(max_workers=self._pool_size()) as pool:
                    chain_results = list(pool.map(run_one, payloads))
        else:
            chain_results = [run_one(payload) for payload in payloads]
        return chain_results, evaluation_cache, ji_cache

    def _run_process(
        self,
        payloads: list[tuple],
        evaluation_cache,
        ji_cache,
        *,
        worker=_run_chain,
        shared_state: "_shm.SharedChainState | None" = None,
        worker_stats: dict | None = None,
    ):
        """Process execution: private caches per worker, merged afterwards.

        Shared-store workers (:func:`_run_chain_shared`) return a fourth
        element — per-call session stats — which is summed into
        ``worker_stats`` and reported to the parent-side ``shared_state``."""
        merged_evaluations = evaluation_cache if evaluation_cache is not None else {}
        merged_ji = ji_cache if ji_cache is not None else {}
        chain_results: list[MCMCResult] = []

        def collect(outcomes) -> None:
            for outcome in outcomes:
                if len(outcome) == 4:
                    result, chain_evaluations, chain_ji, stats = outcome
                    if worker_stats is not None:
                        for key, value in stats.items():
                            worker_stats[key] = worker_stats.get(key, 0) + value
                    if shared_state is not None:
                        shared_state.note_worker_stats(stats)
                else:
                    result, chain_evaluations, chain_ji = outcome
                chain_results.append(result)
                merged_evaluations.update(chain_evaluations)
                merged_ji.update(chain_ji)

        # One IPC round-trip per worker, not per chain: contiguous chunks
        # preserve chain order (map is ordered), and each worker walks its
        # chunk serially — results depend only on each chain's config, so
        # the grouping cannot change a single bit.
        width = self._pool_size()
        step = max(1, -(-len(payloads) // width))
        batches = [
            (worker, tuple(payloads[start : start + step]))
            for start in range(0, len(payloads), step)
        ]
        if self.pool is not None:
            outcome_lists = self.pool.map(_run_chain_batch, batches)
            collect(outcome for outcomes in outcome_lists for outcome in outcomes)
        else:
            with ProcessPoolExecutor(max_workers=width) as pool:
                collect(
                    outcome
                    for outcomes in pool.map(_run_chain_batch, batches)
                    for outcome in outcomes
                )
        return chain_results, merged_evaluations, merged_ji


def _best_chain_index(chain_results: Sequence[MCMCResult]) -> int | None:
    """The feasible chain with the highest correlation; ties → lowest index."""
    best_index: int | None = None
    best_correlation = float("-inf")
    for index, chain in enumerate(chain_results):
        if chain.best_evaluation is None:
            continue
        if chain.best_evaluation.correlation > best_correlation:
            best_index = index
            best_correlation = chain.best_evaluation.correlation
    return best_index
