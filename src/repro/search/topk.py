"""Top-k acquisition: recommend several alternative purchase options.

The paper's conclusion sketches this extension: instead of a single best
acquisition scheme, DANCE may return the k best options ranked by a *score*
that combines correlation, data quality, join informativeness and price, so
the shopper can trade the criteria off themselves.  This module implements
that extension on top of the existing search machinery:

* :class:`ScoreWeights` defines the (linear) scoring function.  Correlation and
  quality contribute positively; join informativeness (weight) and price
  contribute negatively after being normalised by the shopper's α and B so the
  terms are commensurable.
* :func:`top_k_acquisition` runs the Step-1/Step-2 pipeline but keeps *every*
  distinct feasible target graph seen during the MCMC walk (plus the walk of a
  few restarts), scores them, and returns the k best, de-duplicated by the set
  of purchased AS-vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import InfeasibleAcquisitionError
from repro.graph.join_graph import JoinGraph
from repro.graph.steiner import minimal_weight_igraph
from repro.graph.target import TargetGraph, TargetGraphEvaluation
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.search.candidates import build_initial_target_graph, terminal_instances
from repro.search.mcmc import MCMCConfig, mcmc_search


@dataclass(frozen=True)
class ScoreWeights:
    """Linear weights of the top-k score.

    The score of a feasible candidate with evaluation ``e`` is::

        score = correlation_weight * e.correlation
              + quality_weight     * e.quality
              - weight_penalty     * (e.weight / max(alpha, 1))
              - price_penalty      * (e.price  / max(budget, 1))

    so the penalties are expressed relative to the shopper's own limits.
    """

    correlation_weight: float = 1.0
    quality_weight: float = 1.0
    weight_penalty: float = 0.5
    price_penalty: float = 0.5

    def score(
        self,
        evaluation: TargetGraphEvaluation,
        *,
        budget: float,
        max_weight: float,
    ) -> float:
        weight_scale = max_weight if max_weight not in (0.0, float("inf")) else 1.0
        price_scale = budget if budget > 0 else 1.0
        return (
            self.correlation_weight * evaluation.correlation
            + self.quality_weight * evaluation.quality
            - self.weight_penalty * (evaluation.weight / weight_scale)
            - self.price_penalty * (evaluation.price / price_scale)
        )


@dataclass(frozen=True)
class RankedOption:
    """One entry of the top-k recommendation list."""

    rank: int
    score: float
    target_graph: TargetGraph
    evaluation: TargetGraphEvaluation

    def summary(self) -> dict[str, object]:
        return {
            "rank": self.rank,
            "score": round(self.score, 6),
            "instances": list(self.target_graph.nodes),
            "projections": {
                name: sorted(attrs)
                for name, attrs in self.target_graph.projections.items()
            },
            "correlation": self.evaluation.correlation,
            "quality": self.evaluation.quality,
            "join_informativeness": self.evaluation.weight,
            "price": self.evaluation.price,
        }


def _purchase_signature(graph: TargetGraph) -> frozenset[tuple[str, frozenset[str]]]:
    """Two candidates are duplicates when they buy exactly the same AS-vertices."""
    return frozenset(
        (name, graph.projections[name]) for name in graph.purchased_instances()
    )


def top_k_acquisition(
    join_graph: JoinGraph,
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
    *,
    k: int = 3,
    budget: float,
    max_weight: float = float("inf"),
    min_quality: float = 0.0,
    weights: ScoreWeights | None = None,
    mcmc_config: MCMCConfig | None = None,
    restarts: int = 3,
    evaluation_tables: Mapping[str, Table] | None = None,
    rng: int | None = None,
) -> list[RankedOption]:
    """Return up to ``k`` feasible acquisition options ranked by score.

    The candidate pool is gathered by running the Step-2 MCMC walk ``restarts``
    times with different seeds on the Step-1 minimal-weight I-graph; every
    feasible candidate encountered by any walk is scored.  Candidates that buy
    the identical set of AS-vertices are de-duplicated (best score kept).
    """
    if k < 1:
        raise InfeasibleAcquisitionError("top-k acquisition requires k >= 1")
    weights = weights or ScoreWeights()
    mcmc_config = mcmc_config or MCMCConfig()

    sources, targets = terminal_instances(join_graph, source_attributes, target_attributes)
    terminals = list(dict.fromkeys(sources + targets))
    igraph = minimal_weight_igraph(
        join_graph, terminals, max_weight=max_weight, rng=rng
    )
    initial = build_initial_target_graph(
        join_graph, igraph, source_attributes, target_attributes
    )
    tables = (
        dict(evaluation_tables)
        if evaluation_tables is not None
        else {name: join_graph.sample(name) for name in igraph.nodes}
    )

    pricing = join_graph.pricing
    best_by_signature: dict[frozenset, tuple[float, TargetGraph, TargetGraphEvaluation]] = {}

    def consider(graph: TargetGraph) -> None:
        evaluation = graph.evaluate(
            tables, source_attributes, target_attributes, fds, pricing
        )
        if not evaluation.satisfies(
            max_weight=max_weight, min_quality=min_quality, budget=budget
        ):
            return
        score = weights.score(evaluation, budget=budget, max_weight=max_weight)
        signature = _purchase_signature(graph)
        current = best_by_signature.get(signature)
        if current is None or score > current[0]:
            best_by_signature[signature] = (score, graph, evaluation)

    consider(initial)
    for restart in range(restarts):
        config = MCMCConfig(
            iterations=mcmc_config.iterations,
            seed=mcmc_config.seed + restart,
            projection_flip_probability=max(
                mcmc_config.projection_flip_probability, 0.25
            ),
        )
        result = mcmc_search(
            join_graph,
            initial,
            tables,
            source_attributes,
            target_attributes,
            fds,
            budget=budget,
            max_weight=max_weight,
            min_quality=min_quality,
            config=config,
        )
        if result.best_graph is not None:
            consider(result.best_graph)
        # Also sample sibling candidates by re-running single edge swaps from
        # the best graph, so near-optimal alternatives enter the pool.
        seed_graph = result.best_graph or initial
        for edge_index in range(len(seed_graph.edges)):
            parent = seed_graph.nodes[seed_graph.parents[edge_index]]
            child = seed_graph.nodes[edge_index + 1]
            if not join_graph.has_edge(parent, child):
                continue
            for attrs in join_graph.edge(parent, child).join_attribute_choices():
                if attrs != seed_graph.edges[edge_index]:
                    consider(seed_graph.replace_edge(edge_index, attrs))

    ranked = sorted(best_by_signature.values(), key=lambda item: item[0], reverse=True)
    return [
        RankedOption(rank=index + 1, score=score, target_graph=graph, evaluation=evaluation)
        for index, (score, graph, evaluation) in enumerate(ranked[:k])
    ]
