"""The unified :class:`ExecutionPlan` describing how searches execute.

Before PR 8 the executor/pool configuration was sprawled across four surfaces:
``MCMCConfig(chains=, executor=)`` for the walk itself,
``ServiceConfig(chain_pool_workers=)`` for the persistent service pool,
``SearchRuntime(pool=, pool_state=)`` for per-request overrides, and
per-command CLI flags (``--chains`` / ``--executor``).  An
:class:`ExecutionPlan` folds all of that into one value object that is
accepted everywhere a pool can be configured:

- ``DanceConfig(plan=...)`` / ``ServiceConfig(plan=...)`` — the plan's
  ``executor`` and ``chains`` are applied onto ``MCMCConfig``, and its
  ``workers`` / ``shared_store`` / ``pool_policy`` drive the service's
  persistent chain pool;
- ``SearchRuntime(plan=...)`` — a per-request override of chains/executor;
- the CLI — ``--plan executor=process,chains=4`` via :meth:`ExecutionPlan.parse`.

The legacy kwargs keep working for one release as thin deprecated aliases
(``DeprecationWarning``); see ``tests/search/test_execution_plan.py`` for the
equivalence contract.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, replace

from repro.exceptions import ReproError
from repro.search.mcmc import EXECUTORS

POOL_POLICIES = ("persistent", "per_call")

_MAX_POOL_WORKERS = 8

_BOOL_WORDS = {
    "1": True,
    "true": True,
    "on": True,
    "yes": True,
    "0": False,
    "false": False,
    "off": False,
    "no": False,
}


def warn_legacy_option(old: str, new: str) -> None:
    """Emit the one-release deprecation warning for a legacy executor kwarg."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead (legacy alias kept for one release)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ExecutionPlan:
    """How a multi-chain search executes: topology, pooling, and data plane.

    Attributes
    ----------
    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` — same contract as
        ``MCMCConfig.executor``; results are bit-identical for a fixed
        ``(seed, chains)`` regardless of this choice.
    chains:
        Number of independent MCMC chains per search call.
    workers:
        Pool width for thread/process executors.  ``None`` resolves to
        ``min(chains, 8)`` for threads and additionally caps at the CPU count
        for processes (oversubscribing process workers on a small box only
        duplicates evaluation work that co-resident chains would otherwise
        share through the per-worker caches).
    shared_store:
        Whether process pools export the encoded columnar state through
        :class:`repro.search.shm.SharedColumnStore` (zero-copy code arrays,
        versioned deltas instead of pool teardown).  ``None`` means "auto":
        on for process executors, irrelevant otherwise.
    pool_policy:
        ``"persistent"`` keeps one warm pool per service session (the
        default); ``"per_call"`` builds and tears down a pool inside every
        search call (the pre-service behaviour, kept for measurement).
    """

    executor: str = "serial"
    chains: int = 1
    workers: int | None = None
    shared_store: bool | None = None
    pool_policy: str = "persistent"

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ReproError(
                f"ExecutionPlan.executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.chains < 1:
            raise ReproError(f"ExecutionPlan.chains must be >= 1, got {self.chains}")
        if self.workers is not None and self.workers < 1:
            raise ReproError(
                f"ExecutionPlan.workers must be >= 1 or None, got {self.workers}"
            )
        if self.pool_policy not in POOL_POLICIES:
            raise ReproError(
                f"ExecutionPlan.pool_policy must be one of {POOL_POLICIES}, "
                f"got {self.pool_policy!r}"
            )

    # -- derived views -----------------------------------------------------

    @property
    def wants_shared_store(self) -> bool:
        """Effective shared-store switch (auto = on for process executors)."""
        if self.shared_store is None:
            return self.executor == "process"
        return bool(self.shared_store)

    def resolved_workers(self) -> int:
        """Concrete pool width for this plan's executor."""
        if self.workers is not None:
            return self.workers
        width = min(max(1, self.chains), _MAX_POOL_WORKERS)
        if self.executor == "process":
            # Never run more worker processes than cores: chains sharing one
            # worker reuse its persistent caches sequentially (serial-like),
            # which beats oversubscribed workers each evaluating cold.
            width = min(width, max(1, os.cpu_count() or 1))
        return width

    # -- construction helpers ----------------------------------------------

    @classmethod
    def normalize(cls, value: "ExecutionPlan | str | None") -> "ExecutionPlan | None":
        """Accept a plan object, a ``parse()``-able spec string, or None."""
        if value is None or isinstance(value, ExecutionPlan):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise ReproError(
            f"expected ExecutionPlan, spec string or None, got {type(value).__name__}"
        )

    @classmethod
    def parse(cls, spec: str) -> "ExecutionPlan":
        """Parse the CLI form ``"executor=process,chains=4,workers=2,..."``.

        Keys: ``executor``, ``chains``, ``workers``, ``shared_store``
        (on/off/true/false/1/0/yes/no), ``pool_policy``.  A bare token with
        no ``=`` is shorthand for ``executor=<token>``.
        """
        fields: dict[str, object] = {}
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                key = key.strip()
                value = value.strip()
            else:
                key, value = "executor", token
            if key in ("executor", "pool_policy"):
                fields[key] = value
            elif key in ("chains", "workers"):
                try:
                    fields[key] = int(value)
                except ValueError:
                    raise ReproError(
                        f"ExecutionPlan spec {key}={value!r} is not an integer"
                    ) from None
            elif key == "shared_store":
                flag = _BOOL_WORDS.get(value.lower())
                if flag is None:
                    raise ReproError(
                        f"ExecutionPlan spec shared_store={value!r} is not a boolean"
                    )
                fields[key] = flag
            else:
                raise ReproError(f"unknown ExecutionPlan spec key {key!r}")
        return cls(**fields)  # type: ignore[arg-type]

    @classmethod
    def from_legacy(
        cls,
        *,
        executor: str = "serial",
        chains: int = 1,
        workers: int | None = None,
    ) -> "ExecutionPlan":
        """Build a plan from the pre-PR8 knob spelling (no deprecation warning:
        this is the internal bridge, not the user-facing alias)."""
        return cls(executor=executor, chains=chains, workers=workers)

    def with_overrides(self, **changes) -> "ExecutionPlan":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def spec(self) -> str:
        """The canonical ``parse()``-able spelling of this plan."""
        parts = [f"executor={self.executor}", f"chains={self.chains}"]
        if self.workers is not None:
            parts.append(f"workers={self.workers}")
        if self.shared_store is not None:
            parts.append(f"shared_store={'on' if self.shared_store else 'off'}")
        if self.pool_policy != "persistent":
            parts.append(f"pool_policy={self.pool_policy}")
        return ",".join(parts)
