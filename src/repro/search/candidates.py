"""Turning I-layer subgraphs into concrete target-graph candidates.

A candidate target graph is a join order over a set of instances, a join
attribute set per adjacent pair, and a projection attribute set per instance.
These helpers are shared by the MCMC heuristic (which starts from one candidate
and perturbs it) and by the brute-force baselines (which enumerate all of them,
up to caps that keep the enumeration finite).
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence

import networkx as nx

from repro.exceptions import SearchError
from repro.graph.join_graph import JoinGraph
from repro.graph.steiner import IGraph, igraph_join_order
from repro.graph.target import TargetGraph


def _instances_covering(
    join_graph: JoinGraph, attributes: Sequence[str]
) -> dict[str, tuple[str, ...]]:
    """Map each requested attribute to the instances whose schema contains it."""
    covering: dict[str, tuple[str, ...]] = {}
    for attribute in attributes:
        instances = join_graph.instances_with_attribute(attribute)
        covering[attribute] = instances
    return covering


def terminal_instances(
    join_graph: JoinGraph,
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
) -> tuple[list[str], list[str]]:
    """Pick one covering instance per source / target attribute (greedy, fewest first).

    Source attributes prefer instances the shopper already owns.  Raises
    :class:`SearchError` when an attribute is not available anywhere.
    """
    source_terminals: list[str] = []
    for attribute in source_attributes:
        candidates = join_graph.instances_with_attribute(attribute)
        if not candidates:
            raise SearchError(f"source attribute {attribute!r} not found in any instance")
        owned = [name for name in candidates if name in join_graph.source_instances]
        chosen = owned[0] if owned else candidates[0]
        if chosen not in source_terminals:
            source_terminals.append(chosen)
    target_terminals: list[str] = []
    for attribute in target_attributes:
        candidates = join_graph.instances_with_attribute(attribute)
        if not candidates:
            raise SearchError(f"target attribute {attribute!r} not found in any instance")
        # prefer an instance already chosen (fewer purchases), else the first
        already = [
            name
            for name in candidates
            if name in target_terminals or name in source_terminals
        ]
        chosen = already[0] if already else candidates[0]
        if chosen not in target_terminals:
            target_terminals.append(chosen)
    return source_terminals, target_terminals


def candidate_paths(
    join_graph: JoinGraph,
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
    *,
    max_path_length: int = 8,
    max_paths: int = 2000,
) -> list[list[str]]:
    """All simple I-layer paths from a source-covering to a target-covering instance.

    Used by the brute-force baselines.  Paths are enumerated between every pair
    of (instance containing a source attribute, instance containing a target
    attribute); each returned path covers all source and target attributes
    between its two endpoints plus intermediate instances contribute nothing
    but connectivity.  Enumeration stops after ``max_paths`` paths.
    """
    graph = join_graph.igraph
    source_cover = _instances_covering(join_graph, source_attributes)
    target_cover = _instances_covering(join_graph, target_attributes)
    source_instances = sorted({name for names in source_cover.values() for name in names})
    target_instances = sorted({name for names in target_cover.values() for name in names})
    if not source_attributes:
        source_instances = target_instances
    if not source_instances or not target_instances:
        return []

    paths: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()
    for source in source_instances:
        for target in target_instances:
            if source not in graph or target not in graph:
                continue
            if source == target:
                candidate = [source]
                key = (source,)
                if key not in seen:
                    seen.add(key)
                    paths.append(candidate)
                continue
            try:
                simple_paths = nx.all_simple_paths(
                    graph, source, target, cutoff=max_path_length - 1
                )
            except nx.NodeNotFound:
                continue
            for path in simple_paths:
                key = tuple(path)
                if key in seen:
                    continue
                seen.add(key)
                paths.append(list(path))
                if len(paths) >= max_paths:
                    return paths
    return paths


def _covers_attributes(
    join_graph: JoinGraph, path: Sequence[str], attributes: Sequence[str]
) -> bool:
    available: set[str] = set()
    for name in path:
        available.update(join_graph.sample(name).schema.names)
    return all(attribute in available for attribute in attributes)


def build_initial_target_graph(
    join_graph: JoinGraph,
    igraph: IGraph,
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
) -> TargetGraph:
    """The starting point of the MCMC walk: the I-graph with the lightest join attributes.

    The join order is a connected traversal of the I-graph; every instance
    after the first attaches to an already-placed instance it shares an I-edge
    with, using the join attribute set of minimal join informativeness.  Each
    projection contains the join attributes plus whichever source/target
    attributes the instance can provide.
    """
    order = igraph_join_order(igraph)
    if not order:
        raise SearchError("cannot build a target graph from an empty I-graph")
    edges: list[frozenset[str]] = []
    parents: list[int] = []
    igraph_edges = {frozenset(pair) for pair in igraph.edges}
    for position, right in enumerate(order[1:], start=1):
        previous = order[:position]
        # prefer an attachment that is an actual I-graph edge, else any I-edge
        attach_candidates = [
            p for p in previous if frozenset((p, right)) in igraph_edges
        ] or [p for p in previous if join_graph.has_edge(p, right)]
        if not attach_candidates:
            raise SearchError(
                f"instance {right!r} is not connected to the prefix {previous} of the join order"
            )
        parent = attach_candidates[-1]
        edge = join_graph.edge(parent, right)
        parents.append(order.index(parent))
        edges.append(edge.best_join_attributes)

    wanted = set(source_attributes) | set(target_attributes)
    projections: dict[str, frozenset[str]] = {}
    for index, name in enumerate(order):
        required: set[str] = set()
        for edge_index, edge_attrs in enumerate(edges):
            if edge_index + 1 == index or parents[edge_index] == index:
                required |= set(edge_attrs)
        schema_names = set(join_graph.sample(name).schema.names)
        required |= wanted & schema_names
        projections[name] = frozenset(required)

    return TargetGraph(
        nodes=order,
        edges=edges,
        parents=parents,
        projections=projections,
        source_instances=frozenset(join_graph.source_instances),
    )


def enumerate_target_graphs(
    join_graph: JoinGraph,
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
    *,
    max_path_length: int = 8,
    max_paths: int = 500,
    max_graphs_per_path: int = 200,
) -> Iterator[TargetGraph]:
    """Exhaustively enumerate target-graph candidates (the brute-force search space).

    For every covering I-layer path, every combination of join attribute sets
    (one per edge, from the edge's weight map) is emitted as a candidate, with
    projections fixed to "join attributes + requested attributes available in
    the instance".  The per-path combination count is capped.
    """
    wanted = set(source_attributes) | set(target_attributes)
    for path in candidate_paths(
        join_graph,
        source_attributes,
        target_attributes,
        max_path_length=max_path_length,
        max_paths=max_paths,
    ):
        if not _covers_attributes(join_graph, path, list(wanted)):
            continue
        if len(path) == 1:
            name = path[0]
            schema_names = set(join_graph.sample(name).schema.names)
            projections = {name: frozenset(wanted & schema_names)}
            yield TargetGraph(
                nodes=[name],
                edges=[],
                projections=projections,
                source_instances=frozenset(join_graph.source_instances),
            )
            continue
        per_edge_choices: list[list[frozenset[str]]] = []
        for left, right in zip(path, path[1:]):
            if not join_graph.has_edge(left, right):
                per_edge_choices = []
                break
            per_edge_choices.append(join_graph.edge(left, right).join_attribute_choices())
        if not per_edge_choices:
            continue
        emitted = 0
        for combination in product(*per_edge_choices):
            projections: dict[str, frozenset[str]] = {}
            for index, name in enumerate(path):
                required: set[str] = set()
                if index > 0:
                    required |= set(combination[index - 1])
                if index < len(combination):
                    required |= set(combination[index])
                schema_names = set(join_graph.sample(name).schema.names)
                required |= wanted & schema_names
                projections[name] = frozenset(required)
            yield TargetGraph(
                nodes=list(path),
                edges=list(combination),
                parents=list(range(len(path) - 1)),
                projections=projections,
                source_instances=frozenset(join_graph.source_instances),
            )
            emitted += 1
            if emitted >= max_graphs_per_path:
                break
