"""Step 2 of the online phase: MCMC search over the AS-layer (Algorithm 1).

Starting from an initial target graph on the minimal-weight I-graph, the search
repeatedly proposes a neighbouring target graph by replacing the join attribute
set of one randomly-chosen edge with a different candidate set for the same
instance pair.  Proposals that violate the price / weight / quality constraints
are discarded; feasible proposals are accepted with probability
``min(1, CORR' / CORR)`` (Metropolis), so the walk drifts towards
high-correlation target graphs while still exploring.  The best feasible target
graph seen during the walk is returned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, MutableMapping, Sequence

from repro.exceptions import InfeasibleAcquisitionError, SearchError
from repro.graph.join_graph import JoinGraph
from repro.graph.target import TargetGraph, TargetGraphEvaluation
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table

if TYPE_CHECKING:
    from repro.search.chains import MultiChainResult

EXECUTORS = ("serial", "thread", "process")


@dataclass
class MCMCConfig:
    """Tuning knobs of the MCMC search.

    Attributes
    ----------
    iterations:
        Number of proposal steps ``ℓ`` (Algorithm 1 runs a fixed iteration
        count) — per chain when ``chains > 1``.
    seed:
        Seed of the private random generator; runs with the same seed and the
        same inputs are reproducible.  With ``chains > 1`` every chain's seed
        is derived deterministically from this base seed (chain 0 keeps the
        base seed, so ``chains=1`` reproduces the single-chain walk exactly).
    projection_flip_probability:
        Probability that a step additionally toggles one optional attribute of
        one instance's projection (an inexpensive extension of Algorithm 1 that
        lets the walk also explore AS-vertices differing in non-join
        attributes; 0 recovers the paper's pure edge-swap proposal).
    chains:
        Number of independently-seeded Metropolis walks.  ``1`` (the default)
        runs the paper's single chain; larger values run a multi-chain search
        (see :mod:`repro.search.chains`) whose result is the best feasible
        target graph across chains.  The outcome depends only on
        ``(seed, chains)`` — never on the executor or the columnar backend.
    executor:
        How chains execute when ``chains > 1``: ``"serial"`` (one after the
        other, sharing caches), ``"thread"`` (a thread pool sharing
        lock-striped caches), or ``"process"`` (a process pool with per-chain
        caches merged afterwards).  Ignored for ``chains=1``.
    record_trace:
        Whether each walk records its per-iteration correlation in
        :attr:`MCMCResult.trace`.  Off by default: the trace grows by one
        float per iteration per chain and is only read by diagnostics, so
        long multi-chain runs should not pay for it.
    """

    iterations: int = 200
    seed: int = 0
    projection_flip_probability: float = 0.0
    chains: int = 1
    executor: str = "serial"
    record_trace: bool = False

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise SearchError(f"iterations must be >= 0, got {self.iterations}")
        if self.chains < 1:
            raise SearchError(f"chains must be >= 1, got {self.chains}")
        if self.executor not in EXECUTORS:
            raise SearchError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )


@dataclass
class MCMCResult:
    """Outcome of the MCMC walk.

    ``evaluation_cache_hits`` / ``evaluation_cache_misses`` count how often a
    proposed target graph's evaluation was served from the walk's memo table
    versus computed fresh — Metropolis walks revisit the same candidates
    constantly, so the hit rate is the main lever on online-phase runtime.

    ``trace`` holds the per-iteration correlation of the walk's current state,
    but only when the walk ran with ``MCMCConfig(record_trace=True)`` — it is
    empty otherwise, so long multi-chain runs don't accumulate floats nobody
    reads.
    """

    best_graph: TargetGraph | None
    best_evaluation: TargetGraphEvaluation | None
    accepted_steps: int = 0
    feasible_steps: int = 0
    iterations: int = 0
    evaluation_cache_hits: int = 0
    evaluation_cache_misses: int = 0
    trace: list[float] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.best_graph is not None

    # Single-chain values of the multi-chain surface, so MCMCResult and
    # MultiChainResult are interchangeable to every consumer (DANCE, CLI,
    # experiment drivers) without isinstance dispatch.
    @property
    def n_chains(self) -> int:
        return 1

    @property
    def executor(self) -> str:
        return "serial"

    @property
    def best_chain_index(self) -> int | None:
        return 0 if self.feasible else None

    @property
    def chain_correlations(self) -> list[float | None]:
        return [
            None if self.best_evaluation is None else self.best_evaluation.correlation
        ]

    @property
    def evaluation_cache_hit_rate(self) -> float:
        """Fraction of candidate evaluations served from the memo table."""
        total = self.evaluation_cache_hits + self.evaluation_cache_misses
        if total == 0:
            return 0.0
        return self.evaluation_cache_hits / total

    def require_feasible(self) -> tuple[TargetGraph, TargetGraphEvaluation]:
        if self.best_graph is None or self.best_evaluation is None:
            raise InfeasibleAcquisitionError(
                "MCMC search found no target graph satisfying the constraints"
            )
        return self.best_graph, self.best_evaluation


def _graph_signature(graph: TargetGraph) -> tuple:
    """A canonical, hashable identity of a target graph (nodes, edges, parents, projections).

    Two graphs with the same signature evaluate identically on the same tables,
    so the signature keys the walk's evaluation memo table.  The signature is
    purely structural — instance names, edge attribute sets, projections —
    and never contains table data or (possibly array-backed, unhashable)
    :class:`~repro.relational.table.ColumnEncoding` objects, so the memo
    table is valid under both columnar backends
    (:mod:`repro.relational.backend`), which evaluate bit-identically.
    """
    return (
        tuple(graph.nodes),
        tuple(tuple(sorted(edge)) for edge in graph.edges),
        tuple(graph.parents),
        tuple(tuple(sorted(graph.projections[name])) for name in graph.nodes),
    )


def _propose_edge_swap(
    current: TargetGraph, join_graph: JoinGraph, rng: random.Random
) -> TargetGraph | None:
    """Pick a random edge and a random *different* join attribute set for it."""
    if not current.edges:
        return None
    index = rng.randrange(len(current.edges))
    left = current.nodes[current.parents[index]]
    right = current.nodes[index + 1]
    if not join_graph.has_edge(left, right):
        return None
    choices = join_graph.edge(left, right).join_attribute_choices()
    alternatives = [attrs for attrs in choices if attrs != current.edges[index]]
    if not alternatives:
        return None
    return current.replace_edge(index, rng.choice(alternatives))


def _propose_projection_flip(
    current: TargetGraph,
    join_graph: JoinGraph,
    wanted: set[str],
    rng: random.Random,
) -> TargetGraph | None:
    """Toggle one optional (non-join, non-requested) attribute in one projection."""
    name = rng.choice(current.nodes)
    index = current.nodes.index(name)
    required: set[str] = set()
    for edge_index, edge in enumerate(current.edges):
        if edge_index + 1 == index or current.parents[edge_index] == index:
            required |= set(edge)
    schema_names = set(join_graph.sample(name).schema.names)
    required |= wanted & schema_names
    optional = sorted(schema_names - required)
    if not optional:
        return None
    attribute = rng.choice(optional)
    projection = set(current.projections[name])
    if attribute in projection:
        projection.discard(attribute)
    else:
        projection.add(attribute)
    projection |= required
    return current.with_projection(name, projection)


def mcmc_search(
    join_graph: JoinGraph,
    initial: TargetGraph,
    tables: Mapping[str, Table],
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
    *,
    budget: float,
    max_weight: float = float("inf"),
    min_quality: float = 0.0,
    config: MCMCConfig | None = None,
    intermediate_hook=None,
    evaluation_cache: "MutableMapping[tuple, TargetGraphEvaluation] | None" = None,
    ji_cache: "MutableMapping[tuple, float] | None" = None,
    pool=None,
    pool_state=None,
) -> "MCMCResult | MultiChainResult":
    """Algorithm 1: find the best feasible target graph by a Metropolis walk.

    With ``config.chains > 1`` the call transparently becomes a multi-chain
    search (see :mod:`repro.search.chains`): ``chains`` independently-seeded
    walks run under ``config.executor`` and the returned
    :class:`~repro.search.chains.MultiChainResult` (a drop-in superset of
    :class:`MCMCResult`) carries the best feasible target graph across chains.

    Parameters
    ----------
    join_graph:
        The two-layer join graph (supplies the per-edge join-attribute choices).
    initial:
        The starting target graph (from Step 1's minimal-weight I-graph).
    tables:
        The tables to evaluate candidates on — the per-instance samples for the
        heuristic / LP setting, or the full instances for GP-style evaluation.
    source_attributes / target_attributes:
        ``A_S`` and ``A_T``.
    fds:
        The FDs against which quality is measured on the join result.
    budget / max_weight / min_quality:
        The B / α / β constraints of the optimisation problem (Eq. 9).
    config:
        Iteration count, seed, and proposal mix.
    intermediate_hook:
        Optional re-sampling hook applied to intermediate join results during
        candidate evaluation (correlated re-sampling).
    evaluation_cache / ji_cache:
        Optional externally-owned memo tables (any mapping supporting ``get``
        and item assignment, e.g. the lock-striped caches of
        :class:`~repro.search.chains.ChainScheduler`).  Sharing them across
        chains — or across searches and requests, as the acquisition service
        does — never changes walk outcomes, only which walk pays for each
        (deterministic) evaluation.
    pool / pool_state:
        An externally-owned executor (and, for persistent process pools, its
        :class:`~repro.search.chains.ChainPoolState`) serving the multi-chain
        walks; ignored for ``chains=1``.  See
        :class:`~repro.search.chains.ChainScheduler`.
    """
    config = config or MCMCConfig()
    if config.chains > 1:
        from repro.search.chains import ChainScheduler

        return ChainScheduler(
            chains=config.chains,
            executor=config.executor,
            pool=pool,
            pool_state=pool_state,
        ).run(
            join_graph,
            initial,
            tables,
            source_attributes,
            target_attributes,
            fds,
            budget=budget,
            max_weight=max_weight,
            min_quality=min_quality,
            config=config,
            intermediate_hook=intermediate_hook,
            evaluation_cache=evaluation_cache,
            ji_cache=ji_cache,
        )
    rng = random.Random(config.seed)
    pricing = join_graph.pricing
    wanted = set(source_attributes) | set(target_attributes)

    # The walk revisits candidates constantly (edge swaps are frequently
    # undone), so evaluations are memoised by canonical graph signature, and
    # per-edge join-informativeness terms share one cache across candidates.
    if evaluation_cache is None:
        evaluation_cache = {}
    if ji_cache is None:
        ji_cache = {}

    def evaluate(graph: TargetGraph) -> TargetGraphEvaluation:
        signature = _graph_signature(graph)
        cached = evaluation_cache.get(signature)
        if cached is not None:
            result.evaluation_cache_hits += 1
            return cached
        result.evaluation_cache_misses += 1
        # A re-sampling hook makes the evaluation stochastic, and memoising a
        # stochastic evaluation would freeze one random draw per candidate for
        # the rest of the walk.  The hook returns its input object unchanged
        # when it does not fire, so track whether any intermediate was actually
        # altered and only memoise the (then deterministic) evaluations.
        hook = intermediate_hook
        hook_fired = False
        if intermediate_hook is not None:
            def hook(intermediate, _inner=intermediate_hook):
                nonlocal hook_fired
                out = _inner(intermediate)
                if out is not intermediate:
                    hook_fired = True
                return out
        evaluation = graph.evaluate(
            tables,
            source_attributes,
            target_attributes,
            fds,
            pricing,
            intermediate_hook=hook,
            ji_cache=ji_cache,
        )
        if not hook_fired:
            evaluation_cache[signature] = evaluation
        return evaluation

    result = MCMCResult(best_graph=None, best_evaluation=None)
    record_trace = config.record_trace

    current = initial
    current_eval = evaluate(current)
    current_feasible = current_eval.satisfies(
        max_weight=max_weight, min_quality=min_quality, budget=budget
    )
    if current_feasible:
        result.best_graph = current
        result.best_evaluation = current_eval
    result.feasible_steps = 1 if current_feasible else 0

    for _ in range(config.iterations):
        result.iterations += 1
        proposal: TargetGraph | None = None
        flip_probability = config.projection_flip_probability
        if flip_probability > 0 and rng.random() < flip_probability:
            proposal = _propose_projection_flip(current, join_graph, wanted, rng)
        if proposal is None:
            proposal = _propose_edge_swap(current, join_graph, rng)
        if proposal is None:
            if record_trace:
                result.trace.append(current_eval.correlation)
            continue

        proposal_eval = evaluate(proposal)
        if not proposal_eval.satisfies(
            max_weight=max_weight, min_quality=min_quality, budget=budget
        ):
            if record_trace:
                result.trace.append(current_eval.correlation)
            continue
        result.feasible_steps += 1

        if current_eval.correlation <= 0:
            acceptance = 1.0
        else:
            acceptance = min(1.0, proposal_eval.correlation / current_eval.correlation)
        if rng.random() <= acceptance:
            current, current_eval = proposal, proposal_eval
            result.accepted_steps += 1
            if (
                result.best_evaluation is None
                or current_eval.correlation > result.best_evaluation.correlation
            ):
                result.best_graph = current
                result.best_evaluation = current_eval
        if record_trace:
            result.trace.append(current_eval.correlation)

    return result
