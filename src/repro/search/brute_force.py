"""Exhaustive baselines: LP (local optimal) and GP (global optimal).

Both baselines enumerate every candidate target graph (every covering I-layer
path and every join-attribute combination) and return the feasible candidate
with the highest correlation.  They differ only in the data the candidates are
evaluated on:

* **LP** evaluates candidates on the correlated *samples* held by DANCE — the
  best result achievable with the information DANCE actually has;
* **GP** evaluates candidates on the *full* marketplace instances — the true
  optimum a shopper with unlimited access could find.

The evaluation section compares the heuristic's result quality and runtime
against both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import InfeasibleAcquisitionError, ReproError
from repro.graph.join_graph import JoinGraph
from repro.graph.target import TargetGraph, TargetGraphEvaluation
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.search.candidates import enumerate_target_graphs


@dataclass
class BruteForceResult:
    """The optimum found by exhaustive enumeration."""

    best_graph: TargetGraph | None
    best_evaluation: TargetGraphEvaluation | None
    candidates_evaluated: int = 0
    feasible_candidates: int = 0

    @property
    def feasible(self) -> bool:
        return self.best_graph is not None

    def require_feasible(self) -> tuple[TargetGraph, TargetGraphEvaluation]:
        if self.best_graph is None or self.best_evaluation is None:
            raise InfeasibleAcquisitionError(
                "exhaustive search found no target graph satisfying the constraints"
            )
        return self.best_graph, self.best_evaluation


def _exhaustive_search(
    join_graph: JoinGraph,
    tables: Mapping[str, Table],
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
    *,
    budget: float,
    max_weight: float,
    min_quality: float,
    max_path_length: int,
    max_paths: int,
    max_graphs_per_path: int,
) -> BruteForceResult:
    pricing = join_graph.pricing
    result = BruteForceResult(best_graph=None, best_evaluation=None)
    # Candidates overlap heavily in their edges, so per-edge JI terms are
    # shared across the whole enumeration (the tables are fixed for the run).
    ji_cache: dict[tuple, float] = {}
    for candidate in enumerate_target_graphs(
        join_graph,
        source_attributes,
        target_attributes,
        max_path_length=max_path_length,
        max_paths=max_paths,
        max_graphs_per_path=max_graphs_per_path,
    ):
        result.candidates_evaluated += 1
        try:
            evaluation = candidate.evaluate(
                tables, source_attributes, target_attributes, fds, pricing, ji_cache=ji_cache
            )
        except ReproError:
            # A candidate may be un-joinable on the evaluation tables (e.g. a
            # projected sample no longer carries the join attribute, raising
            # JoinError / MeasureError); such candidates are simply not
            # acquirable and are skipped.  Anything outside the typed
            # hierarchy is a genuine bug and propagates.
            continue
        if not evaluation.satisfies(
            max_weight=max_weight, min_quality=min_quality, budget=budget
        ):
            continue
        result.feasible_candidates += 1
        if (
            result.best_evaluation is None
            or evaluation.correlation > result.best_evaluation.correlation
        ):
            result.best_graph = candidate
            result.best_evaluation = evaluation
    return result


def local_optimal(
    join_graph: JoinGraph,
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
    *,
    budget: float,
    max_weight: float = float("inf"),
    min_quality: float = 0.0,
    max_path_length: int = 8,
    max_paths: int = 500,
    max_graphs_per_path: int = 200,
) -> BruteForceResult:
    """LP: exhaustive search evaluated on the samples inside the join graph."""
    tables = {name: join_graph.sample(name) for name in join_graph.instance_names}
    return _exhaustive_search(
        join_graph,
        tables,
        source_attributes,
        target_attributes,
        fds,
        budget=budget,
        max_weight=max_weight,
        min_quality=min_quality,
        max_path_length=max_path_length,
        max_paths=max_paths,
        max_graphs_per_path=max_graphs_per_path,
    )


def global_optimal(
    join_graph: JoinGraph,
    full_tables: Mapping[str, Table],
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
    *,
    budget: float,
    max_weight: float = float("inf"),
    min_quality: float = 0.0,
    max_path_length: int = 8,
    max_paths: int = 500,
    max_graphs_per_path: int = 200,
) -> BruteForceResult:
    """GP: exhaustive search evaluated on the full marketplace instances.

    The candidate space is still generated from the join graph structure (the
    schema-level connectivity is identical for samples and full data), but each
    candidate is priced and scored on the full instances in ``full_tables``.
    """
    missing = [name for name in join_graph.instance_names if name not in full_tables]
    if missing:
        raise InfeasibleAcquisitionError(
            f"global_optimal needs the full data of every instance; missing: {missing}"
        )
    return _exhaustive_search(
        join_graph,
        full_tables,
        source_attributes,
        target_attributes,
        fds,
        budget=budget,
        max_weight=max_weight,
        min_quality=min_quality,
        max_path_length=max_path_length,
        max_paths=max_paths,
        max_graphs_per_path=max_graphs_per_path,
    )
