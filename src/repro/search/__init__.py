"""Online search algorithms (Section 5).

``candidates``
    Helpers that turn an I-layer subgraph into concrete :class:`TargetGraph`
    candidates (join order, join-attribute choices, projection choices).
``mcmc``
    Step 2 of the online phase — the MCMC / Metropolis search over the
    AS-layer of a minimal-weight I-graph (Algorithm 1 of the paper).
``brute_force``
    The LP (local optimal, over samples) and GP (global optimal, over the full
    marketplace data) exhaustive baselines used in the evaluation.
``acquisition``
    The combined two-step heuristic: Step 1 (minimal-weight I-graph) followed
    by Step 2 (MCMC on the AS-layer).
``chains``
    The parallel multi-chain extension of Step 2: several independently
    seeded walks (serial / thread / process executors) sharing the
    evaluation and join-informativeness caches, aggregated into the best
    feasible result across chains.
"""

from repro.search.candidates import (
    build_initial_target_graph,
    candidate_paths,
    enumerate_target_graphs,
)
from repro.search.chains import (
    ChainScheduler,
    LockStripedCache,
    MultiChainResult,
    chain_seed,
)
from repro.search.mcmc import MCMCConfig, MCMCResult, mcmc_search
from repro.search.brute_force import BruteForceResult, global_optimal, local_optimal
from repro.search.acquisition import HeuristicResult, heuristic_acquisition
from repro.search.topk import RankedOption, ScoreWeights, top_k_acquisition

__all__ = [
    "RankedOption",
    "ScoreWeights",
    "top_k_acquisition",
    "candidate_paths",
    "build_initial_target_graph",
    "enumerate_target_graphs",
    "MCMCConfig",
    "MCMCResult",
    "mcmc_search",
    "ChainScheduler",
    "LockStripedCache",
    "MultiChainResult",
    "chain_seed",
    "BruteForceResult",
    "local_optimal",
    "global_optimal",
    "HeuristicResult",
    "heuristic_acquisition",
]
