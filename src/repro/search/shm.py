"""Zero-copy shared-memory export of the encoded columnar store (PR 8).

Process-executor chains used to pickle the whole join graph (samples, code
arrays, caches) into every pool on every build, and the service tore the pool
down whenever the catalog changed.  This module replaces both halves:

``SharedColumnStore``
    Exports a set of :class:`~repro.relational.table.Table` objects into
    ``multiprocessing.shared_memory`` segments: one int64 buffer per cached
    dictionary-encoding (codes and histogram counts) plus one pickled payload
    blob per table (schema, decode values) and one store-level meta blob
    (pricing model, JI cache, FDs).  Every segment is blake2b-fingerprinted
    and listed in a :class:`StoreManifest` — a small picklable registry that
    rides inside chain payloads.  Workers map the int64 buffers as read-only
    numpy views (zero copy); under the pure-python backend the same API ships
    the codes once as ``array('q')`` bytes and rebuilds plain lists.

``SharedChainState``
    The parent-side version manager: publishes one *base* manifest plus an
    ordered log of *delta* manifests (changed tables only, with the JI edge
    weights the incremental ``JoinGraph`` rebuild already computed).  Workers
    hold a versioned session and apply deltas keyed by ``graph_version``,
    hard-resyncing only on version gaps or a rebase — so a warm pool survives
    ``register_source_tables`` without teardown.

Nothing here is numpy-specific: container types round-trip exactly
(``ndarray`` codes come back as read-only ``ndarray`` views, list codes as
lists), so both columnar backends stay bit-identical.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping, Sequence

from repro.exceptions import ReproError
from repro.graph.join_graph import JoinGraph
from repro.quality.fd import FunctionalDependency
from repro.relational import backend as _backend
from repro.relational.table import ColumnEncoding, Table

#: Every segment name starts with this prefix (plus the creating pid), so a
#: leak check can scan ``/dev/shm`` for stragglers after shutdown.
SEGMENT_PREFIX = "rshm"

#: After this many pending deltas the parent rebases (fresh base manifest)
#: instead of letting worker specs grow without bound.
MAX_DELTA_LOG = 16

_SEQUENCE = itertools.count()


def _digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _segment_name(token: str) -> str:
    stem = hashlib.blake2b(token.encode(), digest_size=3).hexdigest()
    return f"{SEGMENT_PREFIX}{os.getpid()}x{stem}x{next(_SEQUENCE)}"


class _RawSegment:
    """Read-only attachment to a POSIX segment, outside the resource tracker.

    Python < 3.13 registers *attached* ``SharedMemory`` objects with the
    resource tracker as if this process created them (bpo-39959): a spawned
    worker's private tracker then unlinks segments the parent still owns on
    worker exit, while unregistering corrupts a fork-shared tracker instead.
    Mapping ``/dev/shm/<name>`` directly sidesteps the tracker on every
    interpreter, and ``PROT_READ`` enforces the read-only contract at the OS
    level (numpy views over the buffer come back non-writeable)."""

    __slots__ = ("name", "_mmap", "buf")

    def __init__(self, name: str, path: str) -> None:
        import mmap

        fd = os.open(path, os.O_RDONLY)
        try:
            size = os.fstat(fd).st_size
            self._mmap = mmap.mmap(fd, size, prot=mmap.PROT_READ)
        finally:
            os.close(fd)
        self.name = name
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        self.buf.release()
        self._mmap.close()


def _attach_segment(name: str):
    """Attach an existing segment without taking resource-tracker ownership."""
    path = f"/dev/shm/{name}"
    if os.path.exists(path):
        return _RawSegment(name, path)
    try:  # non-/dev/shm platforms: 3.13+ can attach untracked directly
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    segment = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore
    except Exception:  # dancelint: disable=ERR301 -- tracker internals vary by version
        pass
    return segment


# --------------------------------------------------------------------------
# Manifests: the picklable segment registry that rides in chain payloads.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentRef:
    """One shared-memory segment: its name, payload size, and content digest."""

    name: str
    size: int
    digest: str


@dataclass(frozen=True)
class ArrayRef:
    """An int64 buffer inside a segment plus the container it must map back to."""

    segment: SegmentRef
    length: int
    container: str  # "ndarray" | "list"


@dataclass(frozen=True)
class TableExport:
    """One table's segments: a pickled payload blob plus its encoding buffers.

    ``arrays`` maps ``(encoding key, kind)`` — kind is ``"codes"`` or
    ``"counts"`` — to the buffer holding it.  Single-column ``#key``
    encodings share their codes buffer with the base column encoding, exactly
    like the in-process cache does.
    """

    name: str
    payload: SegmentRef
    arrays: tuple[tuple[tuple, ArrayRef], ...]


@dataclass(frozen=True)
class StoreManifest:
    """The registry for one published version: base snapshot or delta."""

    token: str
    version: int
    kind: str  # "base" | "delta"
    fingerprint: str
    tables: tuple[TableExport, ...]
    meta: SegmentRef


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to (re)construct state at a target version."""

    token: str
    base: StoreManifest
    deltas: tuple[StoreManifest, ...] = ()
    share_worker_caches: bool = True

    @property
    def version(self) -> int:
        return self.deltas[-1].version if self.deltas else self.base.version


# --------------------------------------------------------------------------
# Parent side: exporting tables into segments.
# --------------------------------------------------------------------------


class SharedColumnStore:
    """One-shot exporter of a table set into shared-memory segments.

    Create one store per published manifest; :meth:`close` unlinks every
    segment the store created.  The parent keeps stores alive for as long as
    a worker might still attach their manifests (the :class:`SharedChainState`
    owns that lifecycle)."""

    def __init__(self, token: str) -> None:
        self.token = token
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False

    # -- low-level segment writers ---------------------------------------

    def _write_segment(self, data: bytes) -> SegmentRef:
        if self._closed:
            raise ReproError("SharedColumnStore is closed")
        size = max(1, len(data))
        segment = shared_memory.SharedMemory(
            name=_segment_name(self.token), create=True, size=size
        )
        segment.buf[: len(data)] = data
        self._segments.append(segment)
        return SegmentRef(name=segment.name, size=len(data), digest=_digest(data))

    def _export_table(self, table: Table) -> TableExport:
        # Force a base encoding for every column so workers can rebuild the
        # raw column lists from (codes, values) without shipping them twice.
        for column in table.schema.names:
            table.encoded(column)
        arrays: list[tuple[tuple, ArrayRef]] = []
        values: dict[tuple, list] = {}
        shared_refs: dict[int, ArrayRef] = {}
        for key, encoding in sorted(table._encodings.items()):
            ref = shared_refs.get(id(encoding.codes))
            if ref is None:
                data, length, container = _backend.codes_to_bytes(encoding.codes)
                ref = ArrayRef(self._write_segment(data), length, container)
                shared_refs[id(encoding.codes)] = ref
            arrays.append(((key, "codes"), ref))
            values[key] = encoding.values
            cached_counts = encoding._counts
            if cached_counts is not None:
                data, length, container = _backend.codes_to_bytes(cached_counts)
                counts_ref = ArrayRef(self._write_segment(data), length, container)
                arrays.append(((key, "counts"), counts_ref))
        payload = pickle.dumps(
            {
                "schema": table.schema,
                "num_rows": table.num_rows,
                "values": values,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return TableExport(
            name=table.name,
            payload=self._write_segment(payload),
            arrays=tuple(arrays),
        )

    def export_tables(
        self,
        tables: Mapping[str, Table],
        *,
        version: int,
        kind: str,
        meta: Mapping[str, object],
    ) -> StoreManifest:
        """Publish ``tables`` plus a pickled ``meta`` blob as one manifest."""
        exports = tuple(self._export_table(tables[name]) for name in sorted(tables))
        meta_ref = self._write_segment(
            pickle.dumps(dict(meta), protocol=pickle.HIGHEST_PROTOCOL)
        )
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(f"{self.token}:{version}:{kind}".encode())
        for export in exports:
            hasher.update(export.payload.digest.encode())
            for _, ref in export.arrays:
                hasher.update(ref.segment.digest.encode())
        hasher.update(meta_ref.digest.encode())
        return StoreManifest(
            token=self.token,
            version=version,
            kind=kind,
            fingerprint=hasher.hexdigest(),
            tables=exports,
            meta=meta_ref,
        )

    def segment_names(self) -> list[str]:
        return [segment.name for segment in self._segments]

    def close(self) -> None:
        """Close and unlink every segment this store created (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()


# --------------------------------------------------------------------------
# Worker side: materializing tables and graphs from manifests.
# --------------------------------------------------------------------------


def _read_segment(ref: SegmentRef, attachments: list) -> shared_memory.SharedMemory:
    segment = _attach_segment(ref.name)
    data = bytes(segment.buf[: ref.size])
    if _digest(data) != ref.digest:
        segment.close()
        raise ReproError(
            f"shared-memory segment {ref.name} failed its fingerprint check "
            "(stale or foreign segment)"
        )
    attachments.append(segment)
    return segment


def _map_array(ref: ArrayRef, attachments: list):
    """Map an int64 buffer back into its original container.

    ``ndarray`` buffers become read-only views over the shared segment (zero
    copy — the segment stays attached for the session's lifetime); ``list``
    buffers are copied out once and the values become plain python ints."""
    segment = _read_segment(ref.segment, attachments)
    return _backend.codes_from_buffer(segment.buf, ref.length, ref.container)


def attach_tables(
    manifest: StoreManifest,
) -> tuple[dict[str, Table], dict, list]:
    """Rebuild the manifest's tables (and its meta blob) from shared memory.

    Returns ``(tables, meta, attachments)``; the caller owns the attachment
    list and must keep the segments open for as long as any ``ndarray`` view
    is alive."""
    attachments: list[shared_memory.SharedMemory] = []
    tables: dict[str, Table] = {}
    for export in manifest.tables:
        payload_segment = _read_segment(export.payload, attachments)
        payload = pickle.loads(bytes(payload_segment.buf[: export.payload.size]))
        schema = payload["schema"]
        values: dict[tuple, list] = payload["values"]
        mapped: dict[tuple, object] = {}
        by_segment: dict[str, object] = {}
        counts: dict[tuple, object] = {}
        for (key, kind), ref in export.arrays:
            buffer = by_segment.get(ref.segment.name)
            if buffer is None:
                buffer = _map_array(ref, attachments)
                by_segment[ref.segment.name] = buffer
            if kind == "codes":
                mapped[key] = buffer
            else:
                counts[key] = buffer
        columns = {
            name: [values[(name,)][code] for code in _as_code_iter(mapped[(name,)])]
            for name in schema.names
        }
        table = Table._from_columns(export.name, schema, columns, payload["num_rows"])
        for key, codes in mapped.items():
            encoding = ColumnEncoding(codes, values[key])
            if key in counts:
                encoding._counts = counts[key]
            table._encodings[key] = encoding
        tables[export.name] = table
    meta_segment = _read_segment(manifest.meta, attachments)
    meta = pickle.loads(bytes(meta_segment.buf[: manifest.meta.size]))
    return tables, meta, attachments


def _as_code_iter(codes):
    if _backend.is_array(codes):
        return codes.tolist()
    return codes


class _WorkerSession:
    """Per-process materialized state for one pool token."""

    __slots__ = (
        "token",
        "version",
        "base_fingerprint",
        "graph",
        "fds",
        "eval_caches",
        "ji_cache",
        "attachments",
    )

    def __init__(self, token: str) -> None:
        self.token = token
        self.version = -1
        self.base_fingerprint = ""
        self.graph: JoinGraph | None = None
        self.fds: tuple[FunctionalDependency, ...] = ()
        self.eval_caches: dict[object, dict] = {}
        self.ji_cache: dict = {}
        self.attachments: list[shared_memory.SharedMemory] = []

    def evaluation_cache(self, memo_key) -> dict:
        """Worker-persistent evaluation memo for one request namespace.

        A plain dict: workers are single-threaded, so unlike the service's
        ``LockStripedCache`` there is no lock traffic on the hot path."""
        if memo_key is None:
            return {}
        return self.eval_caches.setdefault(memo_key, {})

    def close(self) -> None:
        # Release the graph (and with it every ndarray view over the shared
        # buffers) before closing the mappings, or mmap refuses to close.
        self.graph = None
        self.eval_caches.clear()
        self.ji_cache.clear()
        for segment in self.attachments:
            try:
                segment.close()
            except BufferError:
                # A caller still holds a view (e.g. a test keeping a table
                # alive); the mapping is released when that reference dies.
                pass
        self.attachments.clear()


_SESSIONS: dict[str, _WorkerSession] = {}


def _load_base(spec: WorkerSpec) -> _WorkerSession:
    session = _WorkerSession(spec.token)
    tables, meta, attachments = attach_tables(spec.base)
    session.attachments.extend(attachments)
    session.graph = JoinGraph(
        tables,
        pricing=meta["pricing"],
        max_join_attribute_size=meta["max_join_attribute_size"],
        source_instances=meta["source_instances"],
        preload_ji=meta["ji"],
    )
    session.fds = tuple(meta["fds"])
    session.version = spec.base.version
    session.base_fingerprint = spec.base.fingerprint
    return session


def _apply_delta(session: _WorkerSession, manifest: StoreManifest) -> None:
    tables, meta, attachments = attach_tables(manifest)
    session.attachments.extend(attachments)
    is_source: Mapping[str, bool] = meta["is_source"]
    for name in sorted(tables):
        session.graph.add_instance(
            tables[name], is_source=is_source.get(name, False), preload_ji=meta["ji"]
        )
    session.fds = tuple(meta["fds"])
    # The catalog changed: evaluation and JI memo entries may mention the
    # replaced instances, so the session drops them (mirroring the service's
    # own cache reset on graph_version bumps).
    session.eval_caches.clear()
    session.ji_cache.clear()
    session.version = manifest.version


def ensure_session(spec: WorkerSpec) -> tuple[_WorkerSession, dict[str, int]]:
    """Bring this process's session for ``spec.token`` to the target version.

    Returns the session plus per-call stats: ``cold_load`` (first attach in
    this worker), ``resyncs`` (a rebase or version gap forced a full reload),
    ``deltas_applied`` (incremental updates applied this call)."""
    stats = {"cold_load": 0, "resyncs": 0, "deltas_applied": 0}
    session = _SESSIONS.get(spec.token)
    if session is None or session.base_fingerprint != spec.base.fingerprint:
        stats["cold_load" if session is None else "resyncs"] = 1
        if session is not None:
            session.close()
        session = _load_base(spec)
        for delta in spec.deltas:
            _apply_delta(session, delta)
            stats["deltas_applied"] += 1
        _SESSIONS[spec.token] = session
        return session, stats
    pending = sorted(
        (delta for delta in spec.deltas if delta.version > session.version),
        key=lambda manifest: manifest.version,
    )
    expected = session.version
    for delta in pending:
        if delta.version != expected + 1:
            # Version gap: the parent pruned deltas we never saw. Resync.
            session.close()
            session = _load_base(spec)
            for replay in spec.deltas:
                _apply_delta(session, replay)
            stats["resyncs"] += 1
            stats["deltas_applied"] = len(spec.deltas)
            _SESSIONS[spec.token] = session
            return session, stats
        _apply_delta(session, delta)
        stats["deltas_applied"] += 1
        expected += 1
    return session, stats


def drop_session(token: str) -> None:
    """Release this process's session for ``token`` (tests / explicit resets)."""
    session = _SESSIONS.pop(token, None)
    if session is not None:
        session.close()


# --------------------------------------------------------------------------
# Parent side: the versioned state manager behind a persistent pool.
# --------------------------------------------------------------------------


class SharedChainState:
    """Versioned shared-memory state behind one persistent process pool.

    Publishes the base snapshot at construction; :meth:`publish_delta` ships
    changed instances without touching the pool, :meth:`rebase` replaces the
    snapshot wholesale (workers hard-resync), and :meth:`close` unlinks every
    segment.  Duck-types the ``covers()`` surface of
    :class:`repro.search.chains.ChainPoolState` so ``ChainScheduler`` treats
    it as just another pool state."""

    def __init__(
        self,
        join_graph: JoinGraph,
        fds: Sequence[FunctionalDependency],
        *,
        token: str,
        version: int = 0,
        share_worker_caches: bool = True,
    ) -> None:
        self.token = token
        self.share_worker_caches = share_worker_caches
        self._lock = threading.Lock()
        self._stores: list[SharedColumnStore] = []  # guarded-by: self._lock
        self._deltas: list[StoreManifest] = []  # guarded-by: self._lock
        self._stats = {  # guarded-by: self._lock
            "deltas_published": 0,
            "rebases": 0,
            "worker_cold_loads": 0,
            "worker_resyncs": 0,
            "worker_deltas_applied": 0,
        }
        self._closed = False  # guarded-by: self._lock
        with self._lock:
            self._base = self._publish_base_locked(join_graph, fds, version)

    # -- publishing -------------------------------------------------------

    def _publish_base_locked(self, join_graph, fds, version) -> StoreManifest:
        store = SharedColumnStore(self.token)
        manifest = store.export_tables(
            join_graph.instance_tables(),
            version=version,
            kind="base",
            meta={
                "pricing": join_graph.pricing,
                "max_join_attribute_size": join_graph.max_join_attribute_size,
                "source_instances": tuple(sorted(join_graph.source_instances)),
                "fds": tuple(fds),
                "ji": join_graph.ji_weights(),
            },
        )
        self._stores.append(store)
        self._graph = join_graph  # guarded-by: self._lock
        self._revision = join_graph.revision  # guarded-by: self._lock
        self._fds = tuple(fds)  # guarded-by: self._lock
        self._version = version  # guarded-by: self._lock
        return manifest

    def publish_delta(
        self,
        join_graph: JoinGraph,
        fds: Sequence[FunctionalDependency],
        *,
        version: int,
        changed: Sequence[str],
    ) -> None:
        """Ship only the changed instances (plus their JI edges) to workers.

        Falls back to :meth:`rebase` when the version jumps by more than one,
        when a changed name is missing from the new graph, or when the delta
        log has grown past :data:`MAX_DELTA_LOG`."""
        with self._lock:
            if self._closed:
                raise ReproError("SharedChainState is closed")
            names = sorted(set(changed))
            samples = join_graph.instance_tables()
            if (
                version != self._version + 1
                or not names
                or any(name not in samples for name in names)
                or len(self._deltas) >= MAX_DELTA_LOG
            ):
                self._rebase_locked(join_graph, fds, version)
                return
            touched = set(names)
            ji_delta = {
                key: weight
                for key, weight in join_graph.ji_weights().items()
                if key[0] in touched or key[1] in touched
            }
            store = SharedColumnStore(self.token)
            manifest = store.export_tables(
                {name: samples[name] for name in names},
                version=version,
                kind="delta",
                meta={
                    "ji": ji_delta,
                    "fds": tuple(fds),
                    "is_source": {
                        name: name in join_graph.source_instances for name in names
                    },
                },
            )
            self._stores.append(store)
            self._deltas.append(manifest)
            self._graph = join_graph
            self._revision = join_graph.revision
            self._fds = tuple(fds)
            self._version = version
            self._stats["deltas_published"] += 1

    def rebase(
        self, join_graph: JoinGraph, fds: Sequence[FunctionalDependency], *, version: int
    ) -> None:
        """Replace the published snapshot wholesale (workers fully resync)."""
        with self._lock:
            if self._closed:
                raise ReproError("SharedChainState is closed")
            self._rebase_locked(join_graph, fds, version)

    def _rebase_locked(self, join_graph, fds, version) -> None:
        stale = self._stores
        self._stores = []
        self._deltas = []
        self._base = self._publish_base_locked(join_graph, fds, version)
        self._stats["rebases"] += 1
        # Unlinking is safe while workers still hold the old mappings: POSIX
        # keeps the memory alive until the last attachment closes, and any
        # worker that comes back sees the fingerprint change and resyncs.
        for store in stale:
            store.close()

    # -- scheduler surface ------------------------------------------------

    def spec(self) -> WorkerSpec:
        with self._lock:
            return WorkerSpec(
                token=self.token,
                base=self._base,
                deltas=tuple(self._deltas),
                share_worker_caches=self.share_worker_caches,
            )

    def covers(
        self,
        join_graph: JoinGraph,
        tables: Mapping[str, Table],
        fds: Sequence[FunctionalDependency],
    ) -> bool:
        """Same contract as ``ChainPoolState.covers``: light payloads are only
        valid when the published state is exactly the caller's world."""
        with self._lock:
            if self._closed or join_graph is not self._graph:
                return False
            if join_graph.revision != self._revision:
                return False
            if tuple(fds) != self._fds:
                return False
        for name, table in tables.items():
            if name not in join_graph or join_graph.sample(name) is not table:
                return False
        return True

    # -- accounting / lifecycle -------------------------------------------

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def note_worker_stats(self, stats: Mapping[str, int]) -> None:
        with self._lock:
            self._stats["worker_cold_loads"] += stats.get("cold_load", 0)
            self._stats["worker_resyncs"] += stats.get("resyncs", 0)
            self._stats["worker_deltas_applied"] += stats.get("deltas_applied", 0)

    def stats(self) -> dict[str, int]:
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["published_version"] = self._version
            snapshot["pending_deltas"] = len(self._deltas)
            return snapshot

    def segment_names(self) -> list[str]:
        with self._lock:
            names: list[str] = []
            for store in self._stores:
                names.extend(store.segment_names())
            return names

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        with self._lock:
            self._closed = True
            for store in self._stores:
                store.close()
            self._stores.clear()
            self._deltas.clear()


def live_segments() -> list[str]:
    """Names of this machine's live repro shared-memory segments (leak check)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(
        name for name in os.listdir(shm_dir) if name.startswith(SEGMENT_PREFIX)
    )
