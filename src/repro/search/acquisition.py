"""The combined two-step heuristic acquisition (Section 5).

Step 1 finds the minimal-weight I-layer subgraph connecting the instances that
cover the source and target attributes; Step 2 runs the MCMC search over that
subgraph's AS-layer.  The result carries the chosen target graph, its
evaluation, and the I-graph size (the quantity reported in Figure 5(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, MutableMapping, Sequence

from repro.exceptions import (
    InfeasibleAcquisitionError,
    NoOwnedCandidatesError,
    SearchError,
)
from repro.graph.join_graph import JoinGraph
from repro.graph.landmarks import resolve_landmark_seed
from repro.graph.steiner import IGraph, minimal_weight_igraphs
from repro.graph.target import TargetGraph, TargetGraphEvaluation
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.search.candidates import build_initial_target_graph, terminal_instances
from repro.search.chains import ChainPoolState, MultiChainResult
from repro.search.mcmc import MCMCConfig, MCMCResult, mcmc_search
from repro.search.plan import ExecutionPlan


@dataclass
class SearchRuntime:
    """Session-scoped execution context for one online search.

    One-shot callers never build one: every field defaults to "behave exactly
    like before".  The acquisition service (:mod:`repro.service`) threads a
    runtime through :meth:`repro.core.dance.DANCE.acquire` to make the search
    reuse session state instead of rebuilding its world per call:

    ``evaluation_cache`` / ``ji_cache``
        Externally-owned memo tables shared across all candidate I-graphs of
        the request *and* across requests.  The evaluation memo is only valid
        for a fixed ``(samples, source attrs, target attrs, fds, pricing)``
        context — the service namespaces it per request signature; the JI
        cache keys are structural and safe to share service-wide.
    ``pool`` / ``pool_state``
        A persistent executor serving every multi-chain ``mcmc_search`` call
        (see :class:`~repro.search.chains.ChainScheduler`).
    ``step1_cache``
        Session-scoped memo for Step 1 (``minimal_weight_igraphs``), keyed on
        ``(terminal set, alpha, num_landmarks, landmark seed, graph
        revision)``.  Step 1 is a pure function of that key, so warm requests
        skip the landmark/Steiner search entirely; the service invalidates
        the memo off ``DANCE.graph_version`` like its other caches.
    ``mcmc_seed``
        Overrides the configured MCMC base seed for this request — the
        service derives one per batch index.  The landmark-selection seed is
        blake2b-derived from it
        (:func:`repro.graph.landmarks.derive_landmark_seed`).
    ``resampling``
        A private re-sampling policy instance replacing the shared
        ``DanceConfig.resampling`` (whose ``reset()`` is a mutation unsafe
        under concurrent requests).
    ``allow_refinement``
        Whether :meth:`DANCE.acquire` may fall back to buying more samples
        and rebuilding the join graph.  Off for service requests: refinement
        mutates shared session state, so the service exposes it as an
        explicit, serialized operation instead.
    ``candidate_filter``
        Optional ownership predicate ``(candidate index, igraph) -> bool``
        restricting which Step-1 candidate I-graphs this search explores.
        Used by the shard router (:mod:`repro.service.router`): every shard
        runs the identical Step 1, searches only the candidates it owns, and
        the per-shard winners are folded with the same tie-break rule the
        unfiltered loop applies — so the folded answer is bit-identical to
        the unfiltered one for any partition of the candidates.
    ``plan``
        An :class:`~repro.search.plan.ExecutionPlan` overriding the
        configured executor and chain count for this search.  Results stay
        bit-identical for a fixed ``(seed, chains)`` whatever the executor,
        so a runtime plan can re-route *where* chains run without changing
        *what* they compute.
    """

    evaluation_cache: MutableMapping | None = None
    ji_cache: MutableMapping | None = None
    step1_cache: MutableMapping | None = None
    pool: object | None = None
    pool_state: ChainPoolState | None = None
    mcmc_seed: int | None = None
    resampling: object | None = None
    allow_refinement: bool = False
    candidate_filter: "Callable[[int, IGraph], bool] | None" = None
    plan: ExecutionPlan | None = None


@dataclass
class HeuristicResult:
    """Outcome of the two-step heuristic.

    ``mcmc`` is a single-chain :class:`~repro.search.mcmc.MCMCResult` or, when
    Step 2 ran with ``MCMCConfig(chains > 1)``, a
    :class:`~repro.search.chains.MultiChainResult` aggregating all chains —
    the two expose the same best-graph / cache-accounting surface.
    ``igraph_index`` is the winning candidate's position in Step 1's ordered
    candidate list — the tie-break key a shard router folds on.
    """

    igraph: IGraph
    mcmc: MCMCResult | MultiChainResult
    igraph_index: int = 0

    @property
    def best_graph(self) -> TargetGraph | None:
        return self.mcmc.best_graph

    @property
    def best_evaluation(self) -> TargetGraphEvaluation | None:
        return self.mcmc.best_evaluation

    @property
    def feasible(self) -> bool:
        return self.mcmc.feasible

    @property
    def igraph_size(self) -> int:
        return self.igraph.size

    def require_feasible(self) -> tuple[TargetGraph, TargetGraphEvaluation]:
        return self.mcmc.require_feasible()


def heuristic_acquisition(
    join_graph: JoinGraph,
    source_attributes: Sequence[str],
    target_attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
    *,
    budget: float,
    max_weight: float = float("inf"),
    min_quality: float = 0.0,
    num_landmarks: int = 4,
    max_igraphs: int = 3,
    mcmc_config: MCMCConfig | None = None,
    evaluation_tables: Mapping[str, Table] | None = None,
    rng: int | None = None,
    landmark_seed: int | None = None,
    intermediate_hook=None,
    evaluation_cache: MutableMapping | None = None,
    ji_cache: MutableMapping | None = None,
    step1_cache: MutableMapping | None = None,
    pool=None,
    pool_state: ChainPoolState | None = None,
    candidate_filter: Callable[[int, IGraph], bool] | None = None,
) -> HeuristicResult:
    """Run Step 1 + Step 2 and return the best feasible target graph found.

    Step 1 produces one candidate minimal-weight I-graph per landmark/terminal
    hub; Step 2 runs the MCMC walk on the lightest ``max_igraphs`` of them and
    the best feasible result (by correlation) wins.

    Parameters
    ----------
    join_graph:
        The two-layer join graph built from samples during the offline phase.
    source_attributes / target_attributes:
        ``A_S`` and ``A_T`` of the acquisition request.
    fds:
        The FDs used for quality measurement on candidate join results.
    budget / max_weight / min_quality:
        The B / α / β constraints.
    num_landmarks:
        Number of landmarks for Step 1's approximate Steiner search.
    max_igraphs:
        How many of Step 1's candidate I-graphs Step 2 explores.
    mcmc_config:
        Step 2 configuration (iterations, seed, proposal mix, and the
        multi-chain knobs ``chains`` / ``executor`` — with ``chains > 1``
        every candidate I-graph is searched by a parallel multi-chain walk
        whose best feasible result wins, deterministically for a fixed
        ``(seed, chains)`` regardless of executor).
    evaluation_tables:
        Tables to evaluate candidates on; defaults to the samples inside the
        join graph (the normal DANCE setting).
    rng / landmark_seed:
        The landmark-selection seed of Step 1.  ``landmark_seed`` is the
        explicit integer form; the legacy ``rng`` keyword accepts an int or
        ``None`` and is normalized through
        :func:`repro.graph.landmarks.canonical_landmark_seed` (mutable
        ``random.Random`` streams are rejected — Step-1 output must depend
        only on declared inputs).
    intermediate_hook:
        Optional correlated re-sampling hook applied to intermediate joins.
    evaluation_cache / ji_cache:
        Optional externally-owned memo tables shared by *all* candidate
        I-graphs of this request (previously each I-graph's walk started
        cold).  A long-lived caller can keep them across requests too — see
        :class:`SearchRuntime` for the validity contract.
    step1_cache:
        Optional externally-owned memo for Step 1's candidate I-graphs, keyed
        on ``(terminal set, max_weight, num_landmarks, landmark seed, graph
        revision)`` — all of Step 1's declared inputs — so a warm request
        skips the landmark/Steiner search entirely.  Only successful
        candidate lists are memoised; infeasibility always re-raises fresh.
    pool / pool_state:
        Optional persistent executor (plus process-pool state) serving every
        multi-chain ``mcmc_search`` call instead of a fresh pool per call.
    candidate_filter:
        Optional ownership predicate ``(candidate index, igraph) -> bool``:
        only candidates it accepts are searched by Step 2, with their
        original index kept as the tie-break key (``igraph_index``).  Raises
        :class:`~repro.exceptions.NoOwnedCandidatesError` when it excludes
        every candidate.  See :class:`SearchRuntime` and the shard router.

    Raises
    ------
    InfeasibleAcquisitionError
        When Step 1 cannot connect the terminals within the α threshold.  Step
        2 infeasibility (no candidate satisfies all constraints) is reported
        through ``result.feasible`` instead, because the caller may want to
        inspect the I-graph even when no affordable candidate exists.
    """
    try:
        source_terminals, target_terminals = terminal_instances(
            join_graph, source_attributes, target_attributes
        )
    except SearchError as error:
        # A requested attribute that exists in no instance means no target
        # graph can possibly cover it — that is an infeasible acquisition.
        raise InfeasibleAcquisitionError(str(error)) from error
    terminals = list(dict.fromkeys(source_terminals + target_terminals))
    if not terminals:
        raise InfeasibleAcquisitionError("no instance covers the requested attributes")

    landmark_seed = resolve_landmark_seed(rng, landmark_seed)
    step1_key = None
    candidates: tuple[IGraph, ...] | None = None
    if step1_cache is not None:
        # Every declared input of Step 1; the graph dimension is covered by the
        # revision counter (in-place mutation) plus the owner invalidating the
        # whole memo on DANCE.graph_version bumps (graph replacement).
        step1_key = (
            tuple(sorted(set(terminals))),
            float(max_weight),
            num_landmarks,
            landmark_seed,
            join_graph.revision,
        )
        candidates = step1_cache.get(step1_key)
    if candidates is None:
        candidates = tuple(
            minimal_weight_igraphs(
                join_graph,
                terminals,
                num_landmarks=num_landmarks,
                max_weight=max_weight,
                landmark_seed=landmark_seed,
            )
        )
        if step1_cache is not None:
            step1_cache[step1_key] = candidates
    igraphs = list(candidates)[: max(1, max_igraphs)]
    indexed = list(enumerate(igraphs))
    if candidate_filter is not None and igraphs:
        indexed = [
            (index, igraph)
            for index, igraph in indexed
            if candidate_filter(index, igraph)
        ]
        if not indexed:
            # Zero candidates *after* filtering is "this caller owns none of
            # the work"; zero candidates *before* filtering falls through to
            # the plain infeasibility below, exactly like an unfiltered run.
            raise NoOwnedCandidatesError(
                f"the candidate filter excluded all {len(igraphs)} candidate I-graphs"
            )

    best_result: HeuristicResult | None = None
    fallback_result: HeuristicResult | None = None
    for index, igraph in indexed:
        try:
            initial = build_initial_target_graph(
                join_graph, igraph, source_attributes, target_attributes
            )
        except SearchError:
            continue

        tables = (
            dict(evaluation_tables)
            if evaluation_tables is not None
            else {name: join_graph.sample(name) for name in igraph.nodes}
        )

        mcmc = mcmc_search(
            join_graph,
            initial,
            tables,
            source_attributes,
            target_attributes,
            fds,
            budget=budget,
            max_weight=max_weight,
            min_quality=min_quality,
            config=mcmc_config,
            intermediate_hook=intermediate_hook,
            evaluation_cache=evaluation_cache,
            ji_cache=ji_cache,
            pool=pool,
            pool_state=pool_state,
        )
        result = HeuristicResult(igraph=igraph, mcmc=mcmc, igraph_index=index)
        if fallback_result is None:
            fallback_result = result
        if not result.feasible:
            continue
        if (
            best_result is None
            or best_result.best_evaluation is None
            or result.best_evaluation.correlation > best_result.best_evaluation.correlation
        ):
            best_result = result

    if best_result is not None:
        return best_result
    if fallback_result is not None:
        return fallback_result
    raise InfeasibleAcquisitionError(
        f"no joinable target graph covers the requested attributes over {terminals}"
    )
