"""CSV import/export for :class:`~repro.relational.table.Table`.

The marketplace in this reproduction is in-process, but downstream users will
want to load their own source instances from disk; these helpers provide a
small, dependency-free CSV bridge with type inference.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import SchemaError, StorageError
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table, Value


def _parse_value(text: str) -> Value:
    """Parse one CSV cell: empty string -> None, numeric text -> int/float."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def infer_schema(header: Sequence[str], rows: Iterable[Sequence[Value]]) -> Schema:
    """Infer an attribute type per column from already-parsed rows."""
    columns: list[list[Value]] = [[] for _ in header]
    for row in rows:
        for i, value in enumerate(row):
            columns[i].append(value)
    attributes = [
        Attribute(name, AttributeType.infer(column)) for name, column in zip(header, columns)
    ]
    return Schema(attributes)


def read_csv(path: str | Path, *, name: str | None = None) -> Table:
    """Load a CSV file (with a header row) into a :class:`Table`.

    Numeric-looking cells become ``int``/``float``, empty cells become ``None``,
    and column types are inferred from the parsed values.  A missing or
    unreadable file raises a typed :class:`~repro.exceptions.StorageError`
    instead of a raw ``OSError``.
    """
    path = Path(path)
    try:
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError(f"CSV file {path} is empty (no header row)") from None
            rows = [[_parse_value(cell) for cell in row] for row in reader]
    except OSError as error:
        raise StorageError(f"cannot read CSV file {path}: {error}") from error
    schema = infer_schema(header, rows)
    return Table.from_rows(name or path.stem, schema, rows)


def write_csv(table: Table, path: str | Path) -> Path:
    """Write a :class:`Table` to a CSV file (``None`` becomes an empty cell).

    The write is atomic: rows go to a sibling temp file that replaces
    ``path`` in one rename, so a crash mid-write never leaves a truncated
    file where a complete one used to be (the same contract as catalog
    persistence; see :func:`repro.storage.atomic_persist`).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with scratch.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.names)
            for row in table.iter_rows():
                writer.writerow(["" if value is None else value for value in row])
        os.replace(scratch, path)
    except OSError as error:
        scratch.unlink(missing_ok=True)
        raise StorageError(f"cannot write CSV file {path}: {error}") from error
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise
    return path
