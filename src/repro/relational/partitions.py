"""Equivalence classes and partitions (Definition 2.1 of the paper).

Given a table ``D`` and an attribute set ``X``, the *partition* ``pi_X`` groups
row indices by their value combination on ``X``.  Partitions are the work-horse
of FD/AFD checking (TANE-style) and of the paper's data-quality measure: the
quality of an instance w.r.t. an FD ``X -> Y`` is computed by comparing the
partition on ``X`` with the partition on ``X ∪ Y``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.relational.table import Table


def partition(table: Table, attributes: Sequence[str]) -> dict[tuple, list[int]]:
    """Partition of ``table`` on ``attributes``: value-combination -> row indices.

    The returned mapping is the paper's ``pi_X``: each entry is one equivalence
    class, keyed by the (tuple of) attribute values shared by its rows.
    """
    validated = table.schema.validate_subset(attributes)
    groups: dict[tuple, list[int]] = {}
    for index, key in enumerate(table.key_tuples(validated)):
        groups.setdefault(key, []).append(index)
    return groups


def equivalence_classes(table: Table, attributes: Sequence[str]) -> list[list[int]]:
    """The equivalence classes of ``pi_X`` as lists of row indices."""
    return list(partition(table, attributes).values())


def stripped_partition(table: Table, attributes: Sequence[str]) -> list[list[int]]:
    """Equivalence classes with singletons removed (TANE's stripped partition).

    Singleton classes can never witness an FD violation, so FD discovery only
    needs the non-singleton classes.
    """
    return [eclass for eclass in equivalence_classes(table, attributes) if len(eclass) > 1]


def refine(
    base: Mapping[tuple, list[int]], table: Table, attributes: Sequence[str]
) -> dict[tuple, list[int]]:
    """Refine an existing partition by additionally grouping on ``attributes``.

    ``refine(partition(D, X), D, Y)`` equals ``partition(D, X + Y)`` but avoids
    recomputing the keys for ``X``.  Used when walking down the attribute-set
    lattice during FD discovery.
    """
    validated = table.schema.validate_subset(attributes)
    extra_keys = table.key_tuples(validated)
    refined: dict[tuple, list[int]] = {}
    for key, rows in base.items():
        for row in rows:
            refined.setdefault(key + extra_keys[row], []).append(row)
    return refined


def partition_error(table: Table, lhs: Sequence[str], rhs: Sequence[str]) -> float:
    """The g3-style error of the FD ``lhs -> rhs`` on ``table``.

    This is ``1 - Q(D, lhs -> rhs)`` under the paper's quality definition: for
    every equivalence class of ``pi_lhs`` only the largest sub-class of
    ``pi_{lhs ∪ rhs}`` is counted as correct.
    """
    if len(table) == 0:
        return 0.0
    lhs_partition = partition(table, lhs)
    both_partition = partition(table, list(lhs) + [a for a in rhs if a not in lhs])
    largest: dict[tuple, int] = {}
    lhs_len = len(table.schema.validate_subset(lhs))
    for key, rows in both_partition.items():
        lhs_key = key[:lhs_len]
        size = len(rows)
        if size > largest.get(lhs_key, 0):
            largest[lhs_key] = size
    correct = sum(largest[key] for key in lhs_partition)
    return 1.0 - correct / len(table)


def correct_row_indices(table: Table, lhs: Sequence[str], rhs: Sequence[str]) -> set[int]:
    """Row indices in the paper's correct-record set ``C(D, lhs -> rhs)``.

    For every equivalence class ``eq_x`` of ``pi_lhs`` the *largest* equivalence
    class of ``pi_{lhs ∪ rhs}`` contained in ``eq_x`` is kept (ties broken by
    first occurrence, which is deterministic for a given row order).
    """
    validated_lhs = table.schema.validate_subset(lhs)
    extra = [a for a in rhs if a not in validated_lhs]
    both_partition = partition(table, list(validated_lhs) + extra)
    lhs_len = len(validated_lhs)
    best: dict[tuple, list[int]] = {}
    for key, rows in both_partition.items():
        lhs_key = key[:lhs_len]
        current = best.get(lhs_key)
        if current is None or len(rows) > len(current):
            best[lhs_key] = rows
    correct: set[int] = set()
    for rows in best.values():
        correct.update(rows)
    return correct
