"""Equi-join operators: inner join, full outer join, and multi-way join paths.

The correlation / quality estimators operate on the (inner) equi-join result of
the purchased instances, while the join-informativeness measure (Definition
2.4) is defined over the *full outer* join of two instances so that unmatched
join values are penalised.  Both operators are hash joins on the shared join
attributes.

The joins are *columnar*: each side's join key is dictionary-encoded once
(cached on the table), matching happens per distinct key code rather than per
row, and the result columns are gathered directly from (left row, right row)
index vectors — no intermediate row tuples are materialised.

Under the numpy backend (:mod:`repro.relational.backend`) the index vectors
are built with vectorised run expansion (``np.repeat`` over per-row match
counts plus an offset arithmetic gather into the concatenated match arrays)
and the result columns are gathered by fancy indexing into object arrays; the
emitted rows and their order are identical to the pure-python path.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import JoinError
from repro.relational import backend as _backend
from repro.relational.schema import Schema
from repro.relational.table import ColumnEncoding, Table, Value


def shared_join_attributes(left: Table, right: Table) -> tuple[str, ...]:
    """The natural-join attributes: names present in both schemas."""
    return left.schema.common_attributes(right.schema)


def _resolve_join_attributes(
    left: Table, right: Table, on: Sequence[str] | None
) -> tuple[str, ...]:
    if on is None:
        attrs = shared_join_attributes(left, right)
    else:
        attrs = tuple(on)
        left.schema.validate_subset(attrs)
        right.schema.validate_subset(attrs)
    if not attrs:
        raise JoinError(
            f"no join attributes between {left.name!r} ({left.schema.names}) "
            f"and {right.name!r} ({right.schema.names})"
        )
    return attrs


def _build_hash_index(table: Table, attrs: Sequence[str]) -> dict[tuple, list[int]]:
    index: dict[tuple, list[int]] = {}
    for row_index, key in enumerate(table.key_tuples(attrs)):
        if any(value is None for value in key):
            continue
        index.setdefault(key, []).append(row_index)
    return index


def _rows_by_code(encoding: ColumnEncoding) -> list:
    """Row indices grouped by key code (the columnar hash index).

    List-backed codes yield lists of row indices; array-backed codes yield
    ``int64`` arrays (grouped via a stable argsort).  Either way group ``c``
    holds the rows with code ``c`` in ascending row order.
    """
    if _backend.is_array(encoding.codes):
        np = _backend.get_numpy()
        order = np.argsort(encoding.codes, kind="stable").astype(np.int64)
        boundaries = np.searchsorted(
            encoding.codes[order], np.arange(encoding.num_codes + 1)
        )
        return [
            order[boundaries[code] : boundaries[code + 1]]
            for code in range(encoding.num_codes)
        ]
    groups: list[list[int]] = [[] for _ in range(encoding.num_codes)]
    for row_index, code in enumerate(encoding.codes):
        groups[code].append(row_index)
    return groups


def _matches_per_left_code(
    left_encoding: ColumnEncoding, right_encoding: ColumnEncoding
) -> list:
    """For each distinct left key code, the matching right row indices (or None).

    ``None`` join values never match (SQL NULL semantics), so keys containing
    ``None`` — on either side — produce no matches.
    """
    right_groups = _rows_by_code(right_encoding)
    right_by_value: dict = {}
    for code, value in enumerate(right_encoding.values):
        if len(right_groups[code]) and not any(v is None for v in value):
            right_by_value[value] = right_groups[code]
    matches: list = []
    for value in left_encoding.values:
        if any(v is None for v in value):
            matches.append(None)
        else:
            matches.append(right_by_value.get(value))
    return matches


def _expand_matches_np(codes, match_arrays):
    """Vectorised run expansion of per-code match arrays into row-index vectors.

    For each left row (in order), emits one ``(left row, right row)`` index
    pair per entry of ``match_arrays[code]`` — the same pairs in the same
    order as the pure-python extend loop, built without per-row appends.
    """
    np = _backend.get_numpy()
    sizes = np.fromiter(
        (len(m) for m in match_arrays), dtype=np.int64, count=len(match_arrays)
    )
    if match_arrays:
        flat = np.concatenate([np.asarray(m, dtype=np.int64) for m in match_arrays])
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    else:
        flat = np.empty(0, dtype=np.int64)
        starts = np.empty(0, dtype=np.int64)
    row_sizes = sizes[codes]
    left_idx = np.repeat(np.arange(len(codes), dtype=np.int64), row_sizes)
    total = int(row_sizes.sum())
    if total == 0:
        return left_idx, np.empty(0, dtype=np.int64)
    out_starts = np.cumsum(row_sizes) - row_sizes
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_starts, row_sizes)
        + np.repeat(starts[codes], row_sizes)
    )
    return left_idx, flat[positions]


def _join_row_indices(
    left_encoding: ColumnEncoding,
    right_encoding: ColumnEncoding,
    num_right_rows: int,
    *,
    outer: bool,
):
    """The (left row, right row) index vectors of the join result, in row order.

    Index ``-1`` marks the NULL pad of an unmatched side (outer joins only).
    Matched pairs are emitted per left row in order; for outer joins the
    right-only rows follow in ascending right row order.  Returns lists for
    list-backed encodings and ``int64`` arrays for array-backed ones — the
    same pairs in the same order either way.
    """
    matches = _matches_per_left_code(left_encoding, right_encoding)
    if _backend.is_array(left_encoding.codes) and _backend.is_array(
        right_encoding.codes
    ):
        np = _backend.get_numpy()
        pad = np.asarray([-1], dtype=np.int64)
        if outer:
            match_arrays = [m if m is not None and len(m) else pad for m in matches]
        else:
            empty = np.empty(0, dtype=np.int64)
            match_arrays = [m if m is not None else empty for m in matches]
        left_idx, right_idx = _expand_matches_np(left_encoding.codes, match_arrays)
        if outer:
            matched = np.zeros(num_right_rows, dtype=bool)
            valid = right_idx >= 0
            matched[right_idx[valid]] = True
            right_only = np.nonzero(~matched)[0].astype(np.int64)
            left_idx = np.concatenate(
                [left_idx, np.full(len(right_only), -1, dtype=np.int64)]
            )
            right_idx = np.concatenate([right_idx, right_only])
        return left_idx, right_idx

    left_idx: list[int] = []
    right_idx: list[int] = []
    right_matched = [False] * num_right_rows if outer else None
    for left_row_index, code in enumerate(left_encoding.codes):
        matched_rows = matches[code]
        if matched_rows is not None and len(matched_rows):
            left_idx.extend([left_row_index] * len(matched_rows))
            right_idx.extend(matched_rows)
            if outer:
                for right_row_index in matched_rows:
                    right_matched[right_row_index] = True
        elif outer:
            left_idx.append(left_row_index)
            right_idx.append(-1)
    if outer:
        for right_row_index, was_matched in enumerate(right_matched):
            if not was_matched:
                left_idx.append(-1)
                right_idx.append(right_row_index)
    return left_idx, right_idx


def _gather(table: Table, name: str, indices) -> list[Value]:
    """Values of ``table.column(name)`` at ``indices``; index ``-1`` yields NULL.

    Array index vectors gather by fancy indexing into the table's cached
    padded object array (whose trailing ``None`` slot index ``-1`` naturally
    selects); ragged values (e.g. tuple-valued columns) and the pure-python
    backend fall back to the per-row python gather.
    """
    if _backend.is_array(indices):
        padded = table.padded_column_array(name)
        if padded is not None:
            return padded[indices].tolist()
        indices = indices.tolist()
    column = table.column(name)
    return [None if i < 0 else column[i] for i in indices]


def _joined_schema(
    left: Table, right: Table, join_attrs: Sequence[str]
) -> tuple[Schema, list[str]]:
    """Schema of the join result and the right-side attributes that are appended."""
    right_extra = [name for name in right.schema.names if name not in join_attrs]
    extra_attrs = []
    for name in right_extra:
        attribute = right.schema[name]
        if name in left.schema:
            attribute = attribute.renamed(f"{right.name}.{name}")
        extra_attrs.append(attribute)
    schema = Schema(list(left.schema.attributes) + extra_attrs)
    return schema, right_extra


def inner_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None = None,
    *,
    name: str | None = None,
) -> Table:
    """Hash equi-join of two tables on ``on`` (defaults to the shared attributes).

    ``None`` join values never match (SQL NULL semantics).  Non-join attributes
    of the right table that collide with a left attribute name are prefixed
    with the right table's name.
    """
    join_attrs = _resolve_join_attributes(left, right, on)
    schema, right_extra = _joined_schema(left, right, join_attrs)
    result_name = name or f"{left.name}_join_{right.name}"

    left_idx, right_idx = _join_row_indices(
        left.encoded_key(join_attrs),
        right.encoded_key(join_attrs),
        len(right),
        outer=False,
    )

    columns: dict[str, list[Value]] = {}
    for attr in left.schema.names:
        columns[attr] = _gather(left, attr, left_idx)
    result_names = schema.names
    for offset, attr in enumerate(right_extra):
        columns[result_names[len(left.schema.names) + offset]] = _gather(
            right, attr, right_idx
        )
    return Table._from_columns(result_name, schema, columns, len(left_idx))


def full_outer_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None = None,
    *,
    name: str | None = None,
) -> Table:
    """Full outer equi-join: matched rows plus left-only and right-only rows.

    Unmatched sides are padded with ``None``.  The join-informativeness measure
    uses the joint distribution of the two join-attribute copies in this
    result, so the join attribute of the *right* table is preserved in a
    dedicated column named ``"<right.name>.<attr>"``.
    """
    join_attrs = _resolve_join_attributes(left, right, on)
    right_extra = [name_ for name_ in right.schema.names if name_ not in join_attrs]

    # The outer-join schema keeps both copies of the join attributes so that
    # (value, NULL) pairs remain observable.
    right_copy_attrs = [right.schema[a].renamed(f"{right.name}.{a}") for a in join_attrs]
    extra_attrs = []
    for name_ in right_extra:
        attribute = right.schema[name_]
        if name_ in left.schema:
            attribute = attribute.renamed(f"{right.name}.{name_}")
        extra_attrs.append(attribute)
    schema = Schema(list(left.schema.attributes) + right_copy_attrs + extra_attrs)
    result_name = name or f"{left.name}_outer_{right.name}"

    left_idx, right_idx = _join_row_indices(
        left.encoded_key(join_attrs),
        right.encoded_key(join_attrs),
        len(right),
        outer=True,
    )

    columns: dict[str, list[Value]] = {}
    for attr in left.schema.names:
        columns[attr] = _gather(left, attr, left_idx)
    result_names = schema.names
    offset = len(left.schema.names)
    for position, attr in enumerate(list(join_attrs) + right_extra):
        columns[result_names[offset + position]] = _gather(right, attr, right_idx)
    return Table._from_columns(result_name, schema, columns, len(left_idx))


def join_path(
    tables: Sequence[Table],
    *,
    name: str | None = None,
    intermediate_hook=None,
) -> Table:
    """Left-deep evaluation of a join path ``T1 ⋈ T2 ⋈ ... ⋈ Tk``.

    ``intermediate_hook`` (if given) is called with each intermediate join
    result and must return the (possibly re-sampled) table to continue with;
    the correlated re-sampling estimator plugs in here to bound intermediate
    sizes.
    """
    if not tables:
        raise JoinError("join_path requires at least one table")
    result = tables[0]
    for right in tables[1:]:
        result = inner_join(result, right)
        if intermediate_hook is not None:
            result = intermediate_hook(result)
    if name is not None:
        result = result.with_name(name)
    return result


def join_size_upper_bound(left: Table, right: Table, on: Sequence[str] | None = None) -> int:
    """A cheap upper bound on the inner-join cardinality (sum over key histogram products)."""
    try:
        join_attrs = _resolve_join_attributes(left, right, on)
    except JoinError:
        return 0
    left_counts = left.value_counts(join_attrs)
    right_counts = right.value_counts(join_attrs)
    total = 0
    for key, left_count in left_counts.items():
        if any(value is None for value in key):
            continue
        total += left_count * right_counts.get(key, 0)
    return total
