"""Equi-join operators: inner join, full outer join, and multi-way join paths.

The correlation / quality estimators operate on the (inner) equi-join result of
the purchased instances, while the join-informativeness measure (Definition
2.4) is defined over the *full outer* join of two instances so that unmatched
join values are penalised.  Both operators are hash joins on the shared join
attributes.

The joins are *columnar*: each side's join key is dictionary-encoded once
(cached on the table), matching happens per distinct key code rather than per
row, and the result columns are gathered directly from (left row, right row)
index vectors — no intermediate row tuples are materialised.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import JoinError
from repro.relational.schema import Schema
from repro.relational.table import ColumnEncoding, Table, Value


def shared_join_attributes(left: Table, right: Table) -> tuple[str, ...]:
    """The natural-join attributes: names present in both schemas."""
    return left.schema.common_attributes(right.schema)


def _resolve_join_attributes(
    left: Table, right: Table, on: Sequence[str] | None
) -> tuple[str, ...]:
    if on is None:
        attrs = shared_join_attributes(left, right)
    else:
        attrs = tuple(on)
        left.schema.validate_subset(attrs)
        right.schema.validate_subset(attrs)
    if not attrs:
        raise JoinError(
            f"no join attributes between {left.name!r} ({left.schema.names}) "
            f"and {right.name!r} ({right.schema.names})"
        )
    return attrs


def _build_hash_index(table: Table, attrs: Sequence[str]) -> dict[tuple, list[int]]:
    index: dict[tuple, list[int]] = {}
    for row_index, key in enumerate(table.key_tuples(attrs)):
        if any(value is None for value in key):
            continue
        index.setdefault(key, []).append(row_index)
    return index


def _rows_by_code(encoding: ColumnEncoding) -> list[list[int]]:
    """Row indices grouped by key code (the columnar hash index)."""
    groups: list[list[int]] = [[] for _ in range(encoding.num_codes)]
    for row_index, code in enumerate(encoding.codes):
        groups[code].append(row_index)
    return groups


def _matches_per_left_code(
    left_encoding: ColumnEncoding, right_encoding: ColumnEncoding
) -> list[list[int] | None]:
    """For each distinct left key code, the matching right row indices (or None).

    ``None`` join values never match (SQL NULL semantics), so keys containing
    ``None`` — on either side — produce no matches.
    """
    right_groups = _rows_by_code(right_encoding)
    right_by_value: dict[tuple, list[int]] = {}
    for code, value in enumerate(right_encoding.values):
        if right_groups[code] and not any(v is None for v in value):
            right_by_value[value] = right_groups[code]
    matches: list[list[int] | None] = []
    for value in left_encoding.values:
        if any(v is None for v in value):
            matches.append(None)
        else:
            matches.append(right_by_value.get(value))
    return matches


def _gather(column: Sequence[Value], indices: Sequence[int]) -> list[Value]:
    """``column`` values at ``indices``; index ``-1`` yields the NULL pad."""
    return [None if i < 0 else column[i] for i in indices]


def _joined_schema(left: Table, right: Table, join_attrs: Sequence[str]) -> tuple[Schema, list[str]]:
    """Schema of the join result and the right-side attributes that are appended."""
    right_extra = [name for name in right.schema.names if name not in join_attrs]
    extra_attrs = []
    for name in right_extra:
        attribute = right.schema[name]
        if name in left.schema:
            attribute = attribute.renamed(f"{right.name}.{name}")
        extra_attrs.append(attribute)
    schema = Schema(list(left.schema.attributes) + extra_attrs)
    return schema, right_extra


def inner_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None = None,
    *,
    name: str | None = None,
) -> Table:
    """Hash equi-join of two tables on ``on`` (defaults to the shared attributes).

    ``None`` join values never match (SQL NULL semantics).  Non-join attributes
    of the right table that collide with a left attribute name are prefixed
    with the right table's name.
    """
    join_attrs = _resolve_join_attributes(left, right, on)
    schema, right_extra = _joined_schema(left, right, join_attrs)
    result_name = name or f"{left.name}_join_{right.name}"

    matches = _matches_per_left_code(
        left.encoded_key(join_attrs), right.encoded_key(join_attrs)
    )
    left_idx: list[int] = []
    right_idx: list[int] = []
    for left_row_index, code in enumerate(left.encoded_key(join_attrs).codes):
        matched = matches[code]
        if not matched:
            continue
        left_idx.extend([left_row_index] * len(matched))
        right_idx.extend(matched)

    columns: dict[str, list[Value]] = {}
    for attr in left.schema.names:
        column = left.column(attr)
        columns[attr] = [column[i] for i in left_idx]
    result_names = schema.names
    for offset, attr in enumerate(right_extra):
        column = right.column(attr)
        columns[result_names[len(left.schema.names) + offset]] = [
            column[j] for j in right_idx
        ]
    return Table._from_columns(result_name, schema, columns, len(left_idx))


def full_outer_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None = None,
    *,
    name: str | None = None,
) -> Table:
    """Full outer equi-join: matched rows plus left-only and right-only rows.

    Unmatched sides are padded with ``None``.  The join-informativeness measure
    uses the joint distribution of the two join-attribute copies in this
    result, so the join attribute of the *right* table is preserved in a
    dedicated column named ``"<right.name>.<attr>"``.
    """
    join_attrs = _resolve_join_attributes(left, right, on)
    right_extra = [name_ for name_ in right.schema.names if name_ not in join_attrs]

    # The outer-join schema keeps both copies of the join attributes so that
    # (value, NULL) pairs remain observable.
    right_copy_attrs = [right.schema[a].renamed(f"{right.name}.{a}") for a in join_attrs]
    extra_attrs = []
    for name_ in right_extra:
        attribute = right.schema[name_]
        if name_ in left.schema:
            attribute = attribute.renamed(f"{right.name}.{name_}")
        extra_attrs.append(attribute)
    schema = Schema(list(left.schema.attributes) + right_copy_attrs + extra_attrs)
    result_name = name or f"{left.name}_outer_{right.name}"

    matches = _matches_per_left_code(
        left.encoded_key(join_attrs), right.encoded_key(join_attrs)
    )
    right_matched = [False] * len(right)
    left_idx: list[int] = []
    right_idx: list[int] = []
    for left_row_index, code in enumerate(left.encoded_key(join_attrs).codes):
        matched = matches[code]
        if matched:
            left_idx.extend([left_row_index] * len(matched))
            right_idx.extend(matched)
            for right_row_index in matched:
                right_matched[right_row_index] = True
        else:
            left_idx.append(left_row_index)
            right_idx.append(-1)
    for right_row_index, was_matched in enumerate(right_matched):
        if not was_matched:
            left_idx.append(-1)
            right_idx.append(right_row_index)

    columns: dict[str, list[Value]] = {}
    for attr in left.schema.names:
        columns[attr] = _gather(left.column(attr), left_idx)
    result_names = schema.names
    offset = len(left.schema.names)
    for position, attr in enumerate(list(join_attrs) + right_extra):
        columns[result_names[offset + position]] = _gather(right.column(attr), right_idx)
    return Table._from_columns(result_name, schema, columns, len(left_idx))


def join_path(
    tables: Sequence[Table],
    *,
    name: str | None = None,
    intermediate_hook=None,
) -> Table:
    """Left-deep evaluation of a join path ``T1 ⋈ T2 ⋈ ... ⋈ Tk``.

    ``intermediate_hook`` (if given) is called with each intermediate join
    result and must return the (possibly re-sampled) table to continue with;
    the correlated re-sampling estimator plugs in here to bound intermediate
    sizes.
    """
    if not tables:
        raise JoinError("join_path requires at least one table")
    result = tables[0]
    for right in tables[1:]:
        result = inner_join(result, right)
        if intermediate_hook is not None:
            result = intermediate_hook(result)
    if name is not None:
        result = result.with_name(name)
    return result


def join_size_upper_bound(left: Table, right: Table, on: Sequence[str] | None = None) -> int:
    """A cheap upper bound on the inner-join cardinality (sum over key histogram products)."""
    try:
        join_attrs = _resolve_join_attributes(left, right, on)
    except JoinError:
        return 0
    left_counts = left.value_counts(join_attrs)
    right_counts = right.value_counts(join_attrs)
    total = 0
    for key, left_count in left_counts.items():
        if any(value is None for value in key):
            continue
        total += left_count * right_counts.get(key, 0)
    return total
