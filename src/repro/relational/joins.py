"""Equi-join operators: inner join, full outer join, and multi-way join paths.

The correlation / quality estimators operate on the (inner) equi-join result of
the purchased instances, while the join-informativeness measure (Definition
2.4) is defined over the *full outer* join of two instances so that unmatched
join values are penalised.  Both operators are hash joins on the shared join
attributes.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import JoinError
from repro.relational.schema import Schema
from repro.relational.table import Table, Value


def shared_join_attributes(left: Table, right: Table) -> tuple[str, ...]:
    """The natural-join attributes: names present in both schemas."""
    return left.schema.common_attributes(right.schema)


def _resolve_join_attributes(
    left: Table, right: Table, on: Sequence[str] | None
) -> tuple[str, ...]:
    if on is None:
        attrs = shared_join_attributes(left, right)
    else:
        attrs = tuple(on)
        left.schema.validate_subset(attrs)
        right.schema.validate_subset(attrs)
    if not attrs:
        raise JoinError(
            f"no join attributes between {left.name!r} ({left.schema.names}) "
            f"and {right.name!r} ({right.schema.names})"
        )
    return attrs


def _build_hash_index(table: Table, attrs: Sequence[str]) -> dict[tuple, list[int]]:
    index: dict[tuple, list[int]] = {}
    for row_index, key in enumerate(table.key_tuples(attrs)):
        if any(value is None for value in key):
            continue
        index.setdefault(key, []).append(row_index)
    return index


def _joined_schema(left: Table, right: Table, join_attrs: Sequence[str]) -> tuple[Schema, list[str]]:
    """Schema of the join result and the right-side attributes that are appended."""
    right_extra = [name for name in right.schema.names if name not in join_attrs]
    extra_attrs = []
    for name in right_extra:
        attribute = right.schema[name]
        if name in left.schema:
            attribute = attribute.renamed(f"{right.name}.{name}")
        extra_attrs.append(attribute)
    schema = Schema(list(left.schema.attributes) + extra_attrs)
    return schema, right_extra


def inner_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None = None,
    *,
    name: str | None = None,
) -> Table:
    """Hash equi-join of two tables on ``on`` (defaults to the shared attributes).

    ``None`` join values never match (SQL NULL semantics).  Non-join attributes
    of the right table that collide with a left attribute name are prefixed
    with the right table's name.
    """
    join_attrs = _resolve_join_attributes(left, right, on)
    schema, right_extra = _joined_schema(left, right, join_attrs)
    result_name = name or f"{left.name}_join_{right.name}"

    right_index = _build_hash_index(right, join_attrs)
    left_names = left.schema.names
    left_cols = [left.column(attr) for attr in left_names]
    right_cols = [right.column(attr) for attr in right_extra]

    rows: list[tuple] = []
    for left_row_index, key in enumerate(left.key_tuples(join_attrs)):
        if any(value is None for value in key):
            continue
        matches = right_index.get(key)
        if not matches:
            continue
        left_values = tuple(col[left_row_index] for col in left_cols)
        for right_row_index in matches:
            right_values = tuple(col[right_row_index] for col in right_cols)
            rows.append(left_values + right_values)
    return Table.from_rows(result_name, schema, rows)


def full_outer_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None = None,
    *,
    name: str | None = None,
) -> Table:
    """Full outer equi-join: matched rows plus left-only and right-only rows.

    Unmatched sides are padded with ``None``.  The join-informativeness measure
    uses the joint distribution of the two join-attribute copies in this
    result, so the join attribute of the *right* table is preserved in a
    dedicated column named ``"<right.name>.<attr>"``.
    """
    join_attrs = _resolve_join_attributes(left, right, on)
    right_extra = [name_ for name_ in right.schema.names if name_ not in join_attrs]

    # The outer-join schema keeps both copies of the join attributes so that
    # (value, NULL) pairs remain observable.
    right_copy_attrs = [right.schema[a].renamed(f"{right.name}.{a}") for a in join_attrs]
    extra_attrs = []
    for name_ in right_extra:
        attribute = right.schema[name_]
        if name_ in left.schema:
            attribute = attribute.renamed(f"{right.name}.{name_}")
        extra_attrs.append(attribute)
    schema = Schema(list(left.schema.attributes) + right_copy_attrs + extra_attrs)
    result_name = name or f"{left.name}_outer_{right.name}"

    right_index = _build_hash_index(right, join_attrs)
    matched_right: set[int] = set()

    left_names = left.schema.names
    left_cols = [left.column(attr) for attr in left_names]
    right_join_cols = [right.column(attr) for attr in join_attrs]
    right_extra_cols = [right.column(attr) for attr in right_extra]

    rows: list[tuple] = []
    for left_row_index, key in enumerate(left.key_tuples(join_attrs)):
        left_values = tuple(col[left_row_index] for col in left_cols)
        matches = right_index.get(key) if not any(v is None for v in key) else None
        if matches:
            for right_row_index in matches:
                matched_right.add(right_row_index)
                right_key_values = tuple(col[right_row_index] for col in right_join_cols)
                right_values = tuple(col[right_row_index] for col in right_extra_cols)
                rows.append(left_values + right_key_values + right_values)
        else:
            rows.append(left_values + (None,) * (len(join_attrs) + len(right_extra)))

    none_left = (None,) * len(left_names)
    for right_row_index in range(len(right)):
        if right_row_index in matched_right:
            continue
        right_key_values = tuple(col[right_row_index] for col in right_join_cols)
        right_values = tuple(col[right_row_index] for col in right_extra_cols)
        rows.append(none_left + right_key_values + right_values)

    return Table.from_rows(result_name, schema, rows)


def join_path(
    tables: Sequence[Table],
    *,
    name: str | None = None,
    intermediate_hook=None,
) -> Table:
    """Left-deep evaluation of a join path ``T1 ⋈ T2 ⋈ ... ⋈ Tk``.

    ``intermediate_hook`` (if given) is called with each intermediate join
    result and must return the (possibly re-sampled) table to continue with;
    the correlated re-sampling estimator plugs in here to bound intermediate
    sizes.
    """
    if not tables:
        raise JoinError("join_path requires at least one table")
    result = tables[0]
    for right in tables[1:]:
        result = inner_join(result, right)
        if intermediate_hook is not None:
            result = intermediate_hook(result)
    if name is not None:
        result = result.with_name(name)
    return result


def join_size_upper_bound(left: Table, right: Table, on: Sequence[str] | None = None) -> int:
    """A cheap upper bound on the inner-join cardinality (sum over key histogram products)."""
    try:
        join_attrs = _resolve_join_attributes(left, right, on)
    except JoinError:
        return 0
    left_counts = left.value_counts(join_attrs)
    right_counts = right.value_counts(join_attrs)
    total = 0
    for key, left_count in left_counts.items():
        if any(value is None for value in key):
            continue
        total += left_count * right_counts.get(key, 0)
    return total
