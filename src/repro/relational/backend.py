"""Backend selection for the columnar kernels: numpy arrays or pure-python lists.

The hot path of the online search — dictionary-encoded code columns, code
histograms, joint-count reductions, and join gathers — can run on two
interchangeable backends:

``numpy``
    :class:`~repro.relational.table.ColumnEncoding` stores its codes as an
    ``np.ndarray`` (``int64``), histograms are ``np.bincount``, joint counts
    reduce via ``np.unique`` on a combined integer key, and joins gather
    result columns through fancy indexing over (left, right) row-index
    vectors.  Selected automatically whenever numpy is importable.
``python``
    The original pure-python list kernels.  Selected automatically when numpy
    is absent; always available.

Both backends are **bit-identical**: every floating-point reduction consumes
the same count values in the same (first-occurrence) order, so entropies,
correlations, and join informativeness agree bit for bit, and the property
tests in ``tests/property/test_columnar_kernels.py`` double as parity oracles.

Selection
---------
The backend is resolved once, lazily, from (in order of precedence):

1. a programmatic override via :func:`set_backend` / :func:`use_backend`
   (also reachable through ``DanceConfig(backend=...)``),
2. the ``REPRO_BACKEND`` environment variable (``"numpy"``, ``"python"``, or
   ``"auto"``; read once, at first resolution),
3. the default ``"auto"``: numpy when importable, python otherwise.

Requesting ``"numpy"`` when numpy cannot be imported falls back to
``"python"`` with a :class:`RuntimeWarning` instead of failing — the library
never *requires* numpy.

Switching backends mid-process is safe: kernels dispatch on the *type* of the
codes they receive (:func:`is_array`), not on the globally active backend, so
tables encoded under one backend keep working after a switch.  The active
backend only controls the container used for encodings built afterwards.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.exceptions import BackendError

try:  # numpy is an optional dependency; everything degrades to lists without it.
    import numpy as _NUMPY  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised via the masked-numpy tests
    _NUMPY = None

ENV_VAR = "REPRO_BACKEND"

NUMPY = "numpy"
PYTHON = "python"
AUTO = "auto"

_ALIASES = {
    "numpy": NUMPY,
    "np": NUMPY,
    "python": PYTHON,
    "list": PYTHON,
    "pure-python": PYTHON,
    "purepython": PYTHON,
    "auto": AUTO,
    "": AUTO,
}

# Programmatic override (set_backend) and the lazily-resolved active backend.
_override: str | None = None
_active: str | None = None


def numpy_available() -> bool:
    """Whether numpy could be imported in this process."""
    return _NUMPY is not None


def get_numpy():
    """The numpy module, or ``None`` when it is not importable."""
    return _NUMPY


def normalize(name: str) -> str:
    """Canonical backend name for ``name`` (``"numpy"``/``"python"``/``"auto"``).

    Raises :class:`~repro.exceptions.BackendError` (a ``ValueError``) for
    unknown names; accepted aliases are
    ``np``, ``list``, ``pure-python``, ``purepython``, and the empty string.
    """
    canonical = _ALIASES.get(name.strip().lower())
    if canonical is None:
        raise BackendError(
            f"unknown columnar backend {name!r}; expected one of "
            f"{sorted(set(_ALIASES.values()))}"
        )
    return canonical


def _resolve(requested: str) -> str:
    if requested == AUTO:
        return NUMPY if _NUMPY is not None else PYTHON
    if requested == NUMPY and _NUMPY is None:
        warnings.warn(
            "REPRO backend 'numpy' requested but numpy is not importable; "
            "falling back to the pure-python kernels",
            RuntimeWarning,
            stacklevel=3,
        )
        return PYTHON
    return requested


def active_backend() -> str:
    """The resolved backend name: ``"numpy"`` or ``"python"`` (never ``"auto"``)."""
    global _active
    if _active is None:
        requested = _override if _override is not None else normalize(
            os.environ.get(ENV_VAR, AUTO)
        )
        _active = _resolve(requested)
    return _active


def set_backend(name: str | None) -> str:
    """Override the backend (``None`` clears the override and re-reads the env var).

    Returns the backend that is now active.  Existing encodings are untouched;
    only encodings built after the call use the new container.
    """
    global _override, _active
    _override = None if name is None else normalize(name)
    _active = None
    return active_backend()


@contextmanager
def use_backend(name: str | None) -> Iterator[str]:
    """Context manager form of :func:`set_backend`; restores the prior override."""
    global _override, _active
    saved_override, saved_active = _override, _active
    try:
        yield set_backend(name)
    finally:
        _override, _active = saved_override, saved_active


def is_array(obj: object) -> bool:
    """Whether ``obj`` is a numpy array (False whenever numpy is unavailable).

    Kernels dispatch on this rather than on :func:`active_backend` so that
    encodings created before a backend switch keep evaluating correctly.
    """
    return _NUMPY is not None and isinstance(obj, _NUMPY.ndarray)


def make_codes(codes: Sequence[int]):
    """Wrap a freshly-built code list in the active backend's container.

    Under the numpy backend this is an ``int64`` array (the substrate for
    ``np.bincount`` histograms and fancy-indexed join gathers); under the
    python backend the list is returned unchanged.
    """
    if active_backend() == NUMPY:
        return _NUMPY.asarray(codes, dtype=_NUMPY.int64)
    return codes if isinstance(codes, list) else list(codes)


def codes_to_bytes(codes) -> tuple[bytes, int, str]:
    """Serialize a codes/counts container to raw int64 bytes.

    Returns ``(data, length, container)`` where ``container`` records the
    original type (``"ndarray"`` or ``"list"``) so :func:`codes_from_buffer`
    can rebuild the exact same representation on the other side of a shared
    memory segment.  Both containers serialize to identical little-endian
    int64 layout, so a buffer written under one backend can be re-mapped
    under the other."""
    if is_array(codes):
        arr = _NUMPY.ascontiguousarray(codes, dtype=_NUMPY.int64)
        return arr.tobytes(), len(arr), "ndarray"
    from array import array as _array

    return _array("q", codes).tobytes(), len(codes), "list"


def codes_from_buffer(buffer, length: int, container: str):
    """Rebuild a codes/counts container from a raw int64 buffer.

    ``"ndarray"`` containers come back as *read-only* views over ``buffer``
    (zero copy — the caller must keep the buffer alive); ``"list"``
    containers (and ``"ndarray"`` when numpy is unavailable) are copied out
    into a plain python list of ints."""
    if container == "ndarray" and _NUMPY is not None:
        view = _NUMPY.frombuffer(buffer, dtype=_NUMPY.int64, count=length)
        view.flags.writeable = False
        return view
    from array import array as _array

    out = _array("q")
    out.frombytes(bytes(buffer[: length * 8]))
    return out.tolist()
