"""Column-oriented relational table.

:class:`Table` is the single data container used throughout the library.  It is
column oriented (a dict of equal-length lists) because almost every operation
the DANCE pipeline performs — projections, entropy of attribute sets, partition
refinement for FD checking, hash-based correlated sampling on a join attribute —
touches a few columns of many rows.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError
from repro.relational import backend as _backend
from repro.relational.schema import Attribute, AttributeType, Schema

Row = tuple
Value = object

# Sentinel distinguishing "never computed" from a cached None (ragged/no-numpy).
_UNSET = object()


class ColumnEncoding:
    """Dictionary encoding of one column (or multi-column key) of a table.

    ``codes`` holds one integer per row; ``values`` maps each code back to the
    original value (a bare value for single columns, a tuple for multi-column
    keys).  Codes are assigned in first-occurrence order, so iterating
    ``values`` reproduces the first-seen order of the raw data.  Encodings are
    produced and cached by :meth:`Table.encoded` / :meth:`Table.encoded_key`;
    they are the substrate for the histogram-based entropy / join kernels.

    Under the numpy backend (see :mod:`repro.relational.backend`) ``codes`` is
    an ``int64`` ``np.ndarray`` and :meth:`counts` is an ``np.bincount``
    array; under the pure-python backend both are plain lists.  Consumers
    dispatch on the container type via :func:`repro.relational.backend.is_array`,
    and both representations produce bit-identical downstream statistics.
    """

    __slots__ = ("codes", "values", "_counts")

    def __init__(self, codes, values: list[Value]) -> None:
        self.codes = codes
        self.values = values
        self._counts = None

    @property
    def num_codes(self) -> int:
        return len(self.values)

    def counts(self):
        """Histogram of the codes (``counts()[c]`` = occurrences of code ``c``).

        A list of ints for list-backed codes; an ``np.bincount`` array (same
        values, same order) for array-backed codes.
        """
        if self._counts is None:
            from repro.infotheory.entropy import counts_of_codes

            self._counts = counts_of_codes(self.codes, len(self.values))
        return self._counts

    def code_list(self) -> list[int]:
        """The codes as a plain python list (no copy for list-backed codes)."""
        if _backend.is_array(self.codes):
            return self.codes.tolist()
        return self.codes

    def value_counts(self) -> dict[Value, int]:
        """Histogram keyed by the original values, in first-occurrence order.

        Counts are plain python ints under both backends, so the result can be
        compared and reduced without caring which backend built the encoding.
        """
        counts = self.counts()
        if _backend.is_array(counts):
            counts = counts.tolist()
        return {value: counts[code] for code, value in enumerate(self.values)}


def _encode_python(values: Sequence[Value]) -> ColumnEncoding:
    """The reference dictionary-encoding loop (always available, any value type)."""
    codes: list[int] = []
    mapping: dict[Value, int] = {}
    decode: list[Value] = []
    for value in values:
        code = mapping.get(value)
        if code is None:
            code = len(decode)
            mapping[value] = code
            decode.append(value)
        codes.append(code)
    return ColumnEncoding(_backend.make_codes(codes), decode)


def _encode_numpy(values: Sequence[Value]) -> ColumnEncoding | None:
    """Vectorised dictionary encoding, or ``None`` when the dict loop must run.

    Bit-identical to :func:`_encode_python` — same codes in the same
    first-occurrence order, same python-typed ``values`` — but the per-row
    dict work runs in C.  Applies only to columns the two paths are
    guaranteed to agree on: every value the *same* python type, either
    ``int`` (no bools — ``True == 1`` would merge codes under the dict loop
    but round-trip as ``1`` here) or NaN-free ``float`` (``np.unique``
    collapses all NaNs, the dict loop keeps distinct NaN objects apart).
    ``None``-bearing, mixed-type, string, and tuple-keyed columns fall back
    to the dict loop (string sorting in numpy is slower than dict hashing).

    Bounded-range int columns — the dominant case: dictionary-encoded keys of
    the synthetic workloads are dense — factorise in O(n + range) via a
    bucket table (two fancy-index stores and one gather); everything else
    pays one ``np.unique`` sort re-ranked to first-occurrence order.
    """
    np = _backend.get_numpy()
    if np is None or not values:
        return None
    kinds = set(map(type, values))
    if kinds == {int}:
        try:
            arr = np.asarray(values, dtype=np.int64)
        except OverflowError:  # ints beyond int64: the dict loop handles them
            return None
        n = len(arr)
        low = int(arr.min())
        span = int(arr.max()) - low + 1
        if span <= 4 * n + 1024:
            shifted = arr - low
            # Reversed store: the final write into each bucket comes from the
            # smallest row index, i.e. the value's first occurrence.
            first = np.empty(span, dtype=np.int64)
            first[shifted[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
            seen = np.zeros(span, dtype=bool)
            seen[shifted] = True
            present = np.flatnonzero(seen)
            first_present = first[present]
            order = np.argsort(first_present)
            rank_table = np.empty(span, dtype=np.int64)
            rank_table[present[order]] = np.arange(len(present), dtype=np.int64)
            codes = rank_table[shifted]
            decode = arr[first_present[order]].tolist()
            return ColumnEncoding(_backend.make_codes(codes), decode)
    elif kinds == {float}:
        arr = np.asarray(values, dtype=np.float64)
        if np.isnan(arr).any():
            return None
    else:
        return None
    _, first_index, inverse = np.unique(arr, return_index=True, return_inverse=True)
    # np.unique returns values in sorted order; re-rank the codes so that the
    # value first seen earliest gets code 0 (the dict loop's insertion order).
    order = np.argsort(first_index)
    rank = np.empty(len(first_index), dtype=np.int64)
    rank[order] = np.arange(len(first_index), dtype=np.int64)
    codes = rank[inverse.reshape(-1)].astype(np.int64, copy=False)
    decode = arr[first_index[order]].tolist()
    return ColumnEncoding(_backend.make_codes(codes), decode)


def _encode(values: Sequence[Value]) -> ColumnEncoding:
    if _backend.active_backend() == _backend.NUMPY:
        encoding = _encode_numpy(values)
        if encoding is not None:
            return encoding
    return _encode_python(values)


class Table:
    """An immutable-by-convention, column-oriented relational instance.

    Tables are the single data container of the library: marketplace
    datasets, correlated samples, and join results are all ``Table`` objects.
    Statistics needed by the hot path — dictionary encodings
    (:meth:`encoded` / :meth:`encoded_key`), code histograms, key entropies
    (:meth:`key_entropy`), and the numpy backend's padded gather arrays
    (:meth:`padded_column_array`) — are computed lazily and cached on the
    table, and inherited by derived tables that share column objects
    (:meth:`project`, :meth:`rename`, :meth:`with_name`).  The caches assume
    columns are never mutated in place.

    Parameters
    ----------
    name:
        Instance name (e.g. ``"lineitem"``).  Used as the vertex label in the
        join graph and in generated SQL.
    schema:
        The table's :class:`Schema`.
    columns:
        Mapping from attribute name to a list of values.  All columns must have
        the same length and exactly cover the schema.
    """

    __slots__ = (
        "name",
        "schema",
        "_columns",
        "_num_rows",
        "_encodings",
        "_stats",
        "_padded_arrays",
    )

    def __init__(
        self, name: str, schema: Schema, columns: Mapping[str, Sequence[Value]]
    ) -> None:
        if set(columns) != set(schema.names):
            missing = set(schema.names) - set(columns)
            extra = set(columns) - set(schema.names)
            raise SchemaError(
                f"columns do not match schema for table {name!r}: "
                f"missing={sorted(missing)}, unexpected={sorted(extra)}"
            )
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"columns of table {name!r} have unequal lengths: {sorted(lengths)}")
        self.name = name
        self.schema = schema
        self._columns: dict[str, list[Value]] = {
            attr: list(columns[attr]) for attr in schema.names
        }
        self._num_rows = lengths.pop() if lengths else 0
        self._encodings: dict[tuple[str, ...], ColumnEncoding] = {}
        self._stats: dict[object, float] = {}
        self._padded_arrays: dict[str, object] = {}

    @classmethod
    def _from_columns(
        cls, name: str, schema: Schema, columns: dict[str, list[Value]], num_rows: int
    ) -> "Table":
        """Internal fast constructor: trusts (and shares) the given column lists.

        Callers must pass columns that exactly match ``schema`` with equal
        lengths ``num_rows``; the lists are adopted without copying, so they
        must not be mutated afterwards (tables are immutable by convention).
        """
        table = cls.__new__(cls)
        table.name = name
        table.schema = schema
        table._columns = columns
        table._num_rows = num_rows
        table._encodings = {}
        table._stats = {}
        table._padded_arrays = {}
        return table

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema | Sequence[Attribute | str],
        rows: Iterable[Sequence[Value]],
    ) -> "Table":
        """Build a table from an iterable of row tuples/lists."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        columns: dict[str, list[Value]] = {attr: [] for attr in schema.names}
        names = schema.names
        for row in rows:
            if len(row) != len(names):
                raise SchemaError(
                    f"row of width {len(row)} does not match schema of width {len(names)}"
                )
            for attr, value in zip(names, row):
                columns[attr].append(value)
        return cls(name, schema, columns)

    @classmethod
    def from_dicts(
        cls,
        name: str,
        schema: Schema | Sequence[Attribute | str],
        records: Iterable[Mapping[str, Value]],
    ) -> "Table":
        """Build a table from an iterable of ``{attribute: value}`` mappings."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        columns: dict[str, list[Value]] = {attr: [] for attr in schema.names}
        for record in records:
            for attr in schema.names:
                columns[attr].append(record.get(attr))
        return cls(name, schema, columns)

    @classmethod
    def empty(cls, name: str, schema: Schema | Sequence[Attribute | str]) -> "Table":
        """A zero-row table with the given schema."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        return cls(name, schema, {attr: [] for attr in schema.names})

    # ------------------------------------------------------------------ dunder
    def __len__(self) -> int:
        return self._num_rows

    def __iter__(self) -> Iterator[Row]:
        return self.iter_rows()

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, {len(self.schema)} attributes)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self.schema == other.schema
            and self._num_rows == other._num_rows
            and self._columns == other._columns
        )

    # ------------------------------------------------------------------ access
    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self.schema.names

    def column(self, name: str) -> list[Value]:
        """The values of one attribute (a copy is *not* made; treat as read-only)."""
        self.schema.index_of(name)
        return self._columns[name]

    def columns(self, names: Sequence[str]) -> list[list[Value]]:
        return [self.column(name) for name in names]

    def row(self, index: int) -> Row:
        return tuple(self._columns[attr][index] for attr in self.schema.names)

    def iter_rows(self) -> Iterator[Row]:
        names = self.schema.names
        cols = [self._columns[attr] for attr in names]
        for i in range(self._num_rows):
            yield tuple(col[i] for col in cols)

    def to_dicts(self) -> list[dict[str, Value]]:
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.iter_rows()]

    def key_tuples(self, names: Sequence[str]) -> list[tuple]:
        """Row-aligned tuples of the values of ``names`` (used for grouping/joins)."""
        cols = self.columns(list(names))
        return list(zip(*cols)) if cols else [() for _ in range(self._num_rows)]

    # ---------------------------------------------------------------- encoding
    def encoded(self, name: str) -> ColumnEncoding:
        """Lazy dictionary encoding of one column (cached on the table).

        The cache assumes the column is never mutated (tables are immutable by
        convention); callers that mutate column lists in place would observe a
        stale encoding.
        """
        key = (name,)
        encoding = self._encodings.get(key)
        if encoding is None:
            encoding = _encode(self.column(name))
            self._encodings[key] = encoding
        return encoding

    def encoded_key(self, names: Sequence[str]) -> ColumnEncoding:
        """Lazy dictionary encoding of the tuple-key over ``names`` (cached).

        ``values`` are row tuples, aligned with :meth:`key_tuples`.  For a
        single column this still yields one-element tuples so that keys compare
        equal across tables regardless of how they were produced.
        """
        key = tuple(names)
        encoding = self._encodings.get(("#key",) + key)
        if encoding is None:
            if len(key) == 1:
                base = self.encoded(key[0])
                encoding = ColumnEncoding(base.codes, [(value,) for value in base.values])
            else:
                encoding = _encode(self.key_tuples(key))
            self._encodings[("#key",) + key] = encoding
        return encoding

    def padded_column_array(self, name: str):
        """One column as an object ``np.ndarray`` with a trailing ``None`` pad (cached).

        This is the gather substrate of the numpy join backend: row-index
        vectors fancy-index into it, and the pad slot at position ``-1``
        supplies the NULL of unmatched outer-join rows.  Returns ``None`` when
        numpy is unavailable or when the column holds ragged values that numpy
        cannot store element-wise (tuple-valued columns); callers then fall
        back to the python gather.  Cached because the MCMC loop joins the
        same sample tables over and over.
        """
        cached = self._padded_arrays.get(name, _UNSET)
        if cached is _UNSET:
            np = _backend.get_numpy()
            if np is None:
                cached = None
            else:
                column = self.column(name)
                try:
                    padded = np.empty(len(column) + 1, dtype=object)
                    padded[: len(column)] = column
                except ValueError:  # ragged values (e.g. tuples): not representable
                    cached = None
                else:
                    cached = padded
            self._padded_arrays[name] = cached
        return cached

    def key_entropy(self, names: Sequence[str]) -> float:
        """Shannon entropy (bits) of the joint distribution of ``names`` (cached).

        This is the quantity the entropy pricing model and several search
        heuristics need per (table, attribute-set) pair; caching it removes the
        dominant repeated cost from the MCMC evaluation loop.
        """
        from repro.infotheory.entropy import entropy_of_counts

        key = ("entropy",) + tuple(names)
        cached = self._stats.get(key)
        if cached is None:
            cached = entropy_of_counts(self.encoded_key(names).counts())
            self._stats[key] = cached
        return cached

    def _adopt_encodings_from(
        self, parent: "Table", rename_map: Mapping[str, str] | None = None
    ) -> "Table":
        """Share ``parent``'s cached encodings/entropies where columns are identical.

        A cached :class:`ColumnEncoding` (or key entropy) is valid for a
        derived table exactly when every column it was built from is the *same
        list object* in both tables and the row count is unchanged — which is
        the case for projections, renames, and ``with_name`` (all of which
        share column lists), but never for ``take``/``select`` (which gather
        new lists).  ``rename_map`` translates attribute names when the
        derived table renamed columns without copying them.
        """
        if self._num_rows != parent._num_rows:
            return self
        mapping = rename_map or {}
        # Snapshot both cache dicts: a concurrent request may memoise a new
        # encoding/entropy on the shared parent mid-iteration (the serve tier
        # projects the same hot source tables from many threads), and
        # iterating the live dict would raise "changed size during iteration".
        for key, encoding in list(parent._encodings.items()):
            old_names = key[1:] if key[0] == "#key" else key
            new_names = tuple(mapping.get(n, n) for n in old_names)
            if not all(
                new in self._columns and self._columns[new] is parent._columns[old]
                for old, new in zip(old_names, new_names)
            ):
                continue
            new_key = ("#key",) + new_names if key[0] == "#key" else new_names
            self._encodings.setdefault(new_key, encoding)
        for key, value in list(parent._stats.items()):
            if key[0] != "entropy":
                continue
            old_names = key[1:]
            new_names = tuple(mapping.get(n, n) for n in old_names)
            if all(
                new in self._columns and self._columns[new] is parent._columns[old]
                for old, new in zip(old_names, new_names)
            ):
                self._stats.setdefault(("entropy",) + new_names, value)
        for old, padded in list(parent._padded_arrays.items()):
            new = mapping.get(old, old)
            if new in self._columns and self._columns[new] is parent._columns[old]:
                self._padded_arrays.setdefault(new, padded)
        return self

    # -------------------------------------------------------------- operations
    def with_name(self, name: str) -> "Table":
        """The same data under a different instance name (columns are shared)."""
        return Table._from_columns(
            name, self.schema, self._columns, self._num_rows
        )._adopt_encodings_from(self)

    def project(self, names: Sequence[str], *, name: str | None = None) -> "Table":
        """Relational projection onto ``names`` (duplicates are kept, SQL-bag style).

        Column lists are shared with the parent table, so projection is O(1)
        per attribute regardless of the row count, and cached
        :class:`ColumnEncoding`/entropy statistics over the surviving columns
        are inherited rather than recomputed.
        """
        validated = self.schema.validate_subset(names)
        schema = self.schema.project(validated)
        columns = {attr: self._columns[attr] for attr in validated}
        return Table._from_columns(
            name or self.name, schema, columns, self._num_rows
        )._adopt_encodings_from(self)

    def select(self, predicate: Callable[[dict[str, Value]], bool], *, name: str | None = None) -> "Table":
        """Relational selection with a row-dict predicate."""
        names = self.schema.names
        keep: list[int] = []
        for i in range(self._num_rows):
            record = {attr: self._columns[attr][i] for attr in names}
            if predicate(record):
                keep.append(i)
        return self.take(keep, name=name)

    def take(self, indices: Sequence[int], *, name: str | None = None) -> "Table":
        """A new table containing the rows at ``indices`` (in the given order).

        Gathering produces fresh column lists, so — unlike :meth:`project` —
        cached encodings cannot be shared with the parent (the identity
        condition of :meth:`_adopt_encodings_from` never holds) and the
        derived table re-encodes lazily on first use.
        """
        columns = {
            attr: [values[i] for i in indices] for attr, values in self._columns.items()
        }
        return Table._from_columns(name or self.name, self.schema, columns, len(indices))

    def head(self, n: int) -> "Table":
        return self.take(range(min(n, self._num_rows)))

    def rename(self, mapping: Mapping[str, str], *, name: str | None = None) -> "Table":
        """Rename attributes; data is shared column-wise (encodings carry over)."""
        schema = self.schema.rename(mapping)
        columns = {
            mapping.get(attr, attr): values for attr, values in self._columns.items()
        }
        return Table._from_columns(
            name or self.name, schema, columns, self._num_rows
        )._adopt_encodings_from(self, rename_map=dict(mapping))

    def distinct(self, names: Sequence[str] | None = None, *, name: str | None = None) -> "Table":
        """Distinct rows (over ``names`` if given, else over the whole schema)."""
        subset = self if names is None else self.project(names)
        seen: set[tuple] = set()
        keep: list[int] = []
        for i, row in enumerate(subset.iter_rows()):
            if row not in seen:
                seen.add(row)
                keep.append(i)
        return subset.take(keep, name=name)

    def append_column(
        self, attribute: Attribute | str, values: Sequence[Value], *, name: str | None = None
    ) -> "Table":
        """A new table with one extra column appended."""
        if isinstance(attribute, str):
            attribute = Attribute(attribute, AttributeType.infer(values))
        if len(values) != self._num_rows:
            raise SchemaError(
                f"new column {attribute.name!r} has {len(values)} values, "
                f"table has {self._num_rows} rows"
            )
        schema = Schema(list(self.schema.attributes) + [attribute])
        columns = dict(self._columns)
        columns[attribute.name] = list(values)
        return Table(name or self.name, schema, columns)

    def concat(self, other: "Table", *, name: str | None = None) -> "Table":
        """Union-all of two tables with identical schemas."""
        if self.schema != other.schema:
            raise SchemaError(
                f"cannot concat tables with different schemas: {self.schema} vs {other.schema}"
            )
        columns = {
            attr: self._columns[attr] + other._columns[attr] for attr in self.schema.names
        }
        return Table._from_columns(
            name or self.name, self.schema, columns, self._num_rows + other._num_rows
        )

    def shuffled(self, rng: random.Random, *, name: str | None = None) -> "Table":
        """Rows in a random order drawn from ``rng`` (used by re-sampling)."""
        indices = list(range(self._num_rows))
        rng.shuffle(indices)
        return self.take(indices, name=name)

    def sample_rows(self, rate: float, rng: random.Random, *, name: str | None = None) -> "Table":
        """Bernoulli row sample at ``rate`` using ``rng`` (uniform, not correlated)."""
        keep = [i for i in range(self._num_rows) if rng.random() <= rate]
        return self.take(keep, name=name)

    # --------------------------------------------------------------- summaries
    def distinct_count(self, names: Sequence[str]) -> int:
        """Number of distinct value combinations of ``names``."""
        return self.encoded_key(names).num_codes

    def value_counts(self, names: Sequence[str]) -> dict[tuple, int]:
        """Histogram of the value combinations of ``names`` (first-occurrence order)."""
        return self.encoded_key(names).value_counts()

    def null_fraction(self, name: str) -> float:
        """Fraction of ``None`` values in one column."""
        if self._num_rows == 0:
            return 0.0
        column = self.column(name)
        return sum(1 for value in column if value is None) / self._num_rows

    def describe(self) -> dict[str, object]:
        """A small summary dict used by the marketplace catalog and Table 5 bench."""
        return {
            "name": self.name,
            "num_rows": self._num_rows,
            "num_attributes": len(self.schema),
            "attributes": list(self.schema.names),
            "numerical": list(self.schema.numerical_names()),
            "categorical": list(self.schema.categorical_names()),
        }
