"""Relational substrate: schemas, column-oriented tables, joins, and partitions.

This package is a small, self-contained relational engine used by every other
part of the library.  The marketplace datasets, the data shopper's local
instances, the sampled relations, and all intermediate join results are
instances of :class:`~repro.relational.table.Table`.

The public surface is re-exported here:

``AttributeType``, ``Attribute``, ``Schema``
    Schema-level metadata (``schema.py``).
``Table``, ``ColumnEncoding``
    The column-oriented relation and its lazy dictionary encoding
    (``table.py``).
``inner_join``, ``full_outer_join``, ``join_path``
    Equi-join operators and multi-way join evaluation (``joins.py``).
``partition``, ``equivalence_classes``
    Partition / equivalence-class machinery used by FD-based quality
    measurement (``partitions.py``).
``active_backend``, ``set_backend``, ``use_backend``, ``numpy_available``
    Columnar-kernel backend selection: numpy arrays when numpy is importable,
    pure-python lists otherwise (``backend.py``).
"""

from repro.relational.backend import (
    active_backend,
    numpy_available,
    set_backend,
    use_backend,
)
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import ColumnEncoding, Table
from repro.relational.joins import full_outer_join, inner_join, join_path
from repro.relational.partitions import equivalence_classes, partition, stripped_partition

__all__ = [
    "Attribute",
    "AttributeType",
    "Schema",
    "Table",
    "ColumnEncoding",
    "inner_join",
    "full_outer_join",
    "join_path",
    "partition",
    "equivalence_classes",
    "stripped_partition",
    "active_backend",
    "set_backend",
    "use_backend",
    "numpy_available",
]
