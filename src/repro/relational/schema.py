"""Schema metadata for relational instances.

A :class:`Schema` is an ordered collection of named, typed attributes.  The
marketplace exposes schemas (but not data) for free, so the schema objects are
deliberately lightweight and hashable: the instance layer of the join graph is
built purely from schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError, UnknownAttributeError


class AttributeType(str, Enum):
    """Type of an attribute, which decides the correlation estimator used.

    The paper's correlation measure (Definition 2.5) switches between Shannon
    entropy for categorical attributes and cumulative entropy for numerical
    attributes, so the distinction is carried in the schema.
    """

    CATEGORICAL = "categorical"
    NUMERICAL = "numerical"

    @classmethod
    def infer(cls, values: Iterable[object]) -> "AttributeType":
        """Infer a type from raw values: all-numeric (ignoring ``None``) is numerical."""
        saw_value = False
        for value in values:
            if value is None:
                continue
            saw_value = True
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return cls.CATEGORICAL
        return cls.NUMERICAL if saw_value else cls.CATEGORICAL


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relational instance."""

    name: str
    type: AttributeType = AttributeType.CATEGORICAL

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be a non-empty string")

    def is_numerical(self) -> bool:
        return self.type is AttributeType.NUMERICAL

    def is_categorical(self) -> bool:
        return self.type is AttributeType.CATEGORICAL

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name."""
        return Attribute(new_name, self.type)


class Schema:
    """An ordered, duplicate-free collection of :class:`Attribute` objects."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute | str]) -> None:
        normalized: list[Attribute] = []
        for attribute in attributes:
            if isinstance(attribute, str):
                attribute = Attribute(attribute)
            elif not isinstance(attribute, Attribute):
                raise SchemaError(
                    f"schema entries must be Attribute or str, got {type(attribute).__name__}"
                )
            normalized.append(attribute)
        names = [attribute.name for attribute in normalized]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {duplicates}")
        self._attributes: tuple[Attribute, ...] = tuple(normalized)
        self._index: dict[str, int] = {attr.name: i for i, attr in enumerate(self._attributes)}

    # ------------------------------------------------------------------ dunder
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(name, self.names) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        # dancelint: disable=DET102 -- backs __eq__ for in-process dict/set use
        # only; persisted or cross-process schema identity goes through
        # storage.serialize.table_fingerprint (blake2b), never through this.
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}:{a.type.value[:3]}" for a in self._attributes)
        return f"Schema({inner})"

    # ------------------------------------------------------------------ access
    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(attr.name for attr in self._attributes)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    def index_of(self, name: str) -> int:
        """Positional index of ``name``; raises :class:`UnknownAttributeError`."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(name, self.names) from None

    def type_of(self, name: str) -> AttributeType:
        return self[name].type

    def numerical_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes if a.is_numerical())

    def categorical_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes if a.is_categorical())

    # ------------------------------------------------------------- set algebra
    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names`` (kept in the order given by ``names``)."""
        return Schema([self[name] for name in names])

    def common_attributes(self, other: "Schema") -> tuple[str, ...]:
        """Names present in both schemas, in this schema's order."""
        return tuple(name for name in self.names if name in other)

    def union(self, other: "Schema") -> "Schema":
        """This schema followed by the attributes of ``other`` not already present."""
        extra = [attr for attr in other if attr.name not in self]
        return Schema(list(self._attributes) + extra)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Rename attributes according to ``mapping`` (missing names are kept)."""
        for old in mapping:
            if old not in self:
                raise UnknownAttributeError(old, self.names)
        return Schema(
            [attr.renamed(mapping.get(attr.name, attr.name)) for attr in self._attributes]
        )

    def validate_subset(self, names: Iterable[str]) -> tuple[str, ...]:
        """Check every name exists and return them as a tuple (stable order of input)."""
        result = []
        for name in names:
            if name not in self:
                raise UnknownAttributeError(name, self.names)
            result.append(name)
        return tuple(result)
