"""Determinism rules (DET1xx): served bits must not depend on process state.

Every rule here guards a failure mode this repo has actually shipped and
fixed dynamically before (PR 1: ``hash()``-derived workload columns differed
across processes; PR 5: hidden RNG streams in Step 1): unseeded randomness,
``PYTHONHASHSEED``-salted hashing, unordered-set iteration feeding results,
and wall-clock / entropy reads outside measurement code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, register

#: ``random`` module functions that consume the *global* (unseeded) stream.
_GLOBAL_STREAM_FUNCTIONS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``(module, attribute)`` calls that read wall-clock time or OS entropy.
#: ``time.perf_counter`` / ``time.monotonic`` are *not* here: measuring
#: durations is fine everywhere, it is absolute time that leaks into state.
_WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
        ("os", "urandom"),
        ("random", "SystemRandom"),
    }
)

#: ``time`` conversions that default to "now" when called without a seconds
#: argument; with an explicit argument they are pure and allowed.
_IMPLICIT_NOW = {
    ("time", "ctime"): 0,
    ("time", "gmtime"): 0,
    ("time", "localtime"): 0,
    ("time", "strftime"): 1,
}


@register
class UnseededRandomRule(Rule):
    """DET101: no unseeded ``random.Random()`` and no global-stream calls.

    The global ``random`` stream is seeded from OS entropy at import, so any
    draw from it differs per process; an argument-less ``random.Random()``
    does the same.  Every RNG in this repo must be constructed from an
    explicit seed (ultimately a blake2b derivation of the request seed).
    """

    code = "DET101"
    name = "unseeded-random"
    description = "unseeded random.Random() or module-level random.* stream call"
    severity = Severity.ERROR

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = context.resolve_call(node)
            if resolved is None or resolved[0] != "random":
                continue
            _, attribute = resolved
            if attribute == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    context,
                    "random.Random() without a seed draws from OS entropy; "
                    "pass an explicit (blake2b-derived) seed",
                    node,
                )
            elif attribute in _GLOBAL_STREAM_FUNCTIONS:
                yield self.finding(
                    context,
                    f"random.{attribute}() uses the process-global RNG stream; "
                    "construct a seeded random.Random(seed) instead",
                    node,
                )


@register
class BuiltinHashRule(Rule):
    """DET102: no builtin ``hash()`` — it is ``PYTHONHASHSEED``-salted.

    ``hash(str)`` differs across processes unless ``PYTHONHASHSEED`` is
    pinned, so any value derived from it (seeds, stripe routing that leaks
    into output order, persisted keys) breaks cross-process bit-identity.
    Use ``hashlib.blake2b`` for stable hashing.  Genuinely hash-table-only
    uses (``__hash__`` backing ``__eq__``, lock-stripe routing) are
    allowlisted with ``# dancelint: disable=DET102 -- <justification>``;
    the justification is mandatory (LNT001 otherwise).
    """

    code = "DET102"
    name = "builtin-hash"
    description = "builtin hash() is PYTHONHASHSEED-salted; use hashlib.blake2b"
    severity = Severity.ERROR
    requires_reason = True

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    context,
                    "builtin hash() is salted by PYTHONHASHSEED and differs "
                    "across processes; use hashlib.blake2b, or allowlist with "
                    "a justification if the value never leaves this process",
                    node,
                )


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
    )


def _is_unordered(node: ast.AST) -> bool:
    """Whether ``node`` visibly evaluates to an unordered set.

    Deliberately syntactic — no type inference — so it only fires on
    expressions that are sets *by construction*: set literals and
    comprehensions, ``set()`` / ``frozenset()`` calls, set-operator
    expressions over them, and set algebra over ``dict.keys()`` views
    (a plain ``.keys()`` iteration is insertion-ordered and fine; ``keys() -
    other`` is a set).  Wrapping in ``sorted()`` makes any of them ordered.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "difference",
            "intersection",
            "symmetric_difference",
            "union",
        ):
            return _is_unordered(node.func.value) or _is_keys_call(node.func.value)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        for operand in (node.left, node.right):
            if _is_unordered(operand) or _is_keys_call(operand):
                return True
    return False


#: Callables whose result does not depend on argument order, so a
#: comprehension passed directly to them may iterate an unordered set.
#: ``sum`` is deliberately absent: float addition is not associative, so
#: summing a set in hash order is exactly the bug this rule exists to catch.
_ORDER_INSENSITIVE_WRAPPERS = frozenset(
    {"all", "any", "frozenset", "len", "max", "min", "set", "sorted"}
)

_Comprehension = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _order_insensitive_comprehensions(tree: ast.Module) -> set[ast.expr]:
    """Comprehensions passed directly to an order-insensitive callable."""
    wrapped: set[ast.expr] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE_WRAPPERS
        ):
            for argument in node.args:
                if isinstance(argument, _Comprehension):
                    wrapped.add(argument)
    return wrapped


def _iteration_sites(tree: ast.Module) -> Iterator[tuple[ast.expr, ast.expr | None]]:
    """Yield ``(iterable expression, owning comprehension or None)`` pairs."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, None
        elif isinstance(node, _Comprehension):
            for generator in node.generators:
                yield generator.iter, node


@register
class UnorderedIterationRule(Rule):
    """DET103: no iteration over bare sets — fold order must be defined.

    Set iteration order depends on insertion history *and* element hashes
    (salted for strings), so a loop over a bare set that feeds seed
    derivation, result emission, or any non-commutative fold differs across
    processes.  Wrap the iterable in ``sorted(...)``; genuinely
    order-insensitive folds (pure dict construction, commutative sums) are
    baseline or suppression material.
    """

    code = "DET103"
    name = "unordered-iteration"
    description = "iteration over an unordered set; wrap in sorted(...)"
    severity = Severity.WARNING

    def check(self, context: FileContext) -> Iterator[Finding]:
        wrapped = _order_insensitive_comprehensions(context.tree)
        for iterable, owner in _iteration_sites(context.tree):
            if owner is not None and owner in wrapped:
                continue
            if _is_unordered(iterable):
                yield self.finding(
                    context,
                    "iterating an unordered set: order depends on hashing and "
                    "insertion history; wrap in sorted(...) if the fold or "
                    "output depends on order",
                    iterable,
                )


@register
class WallClockRule(Rule):
    """DET104: no wall-clock / entropy reads outside measurement code.

    ``time.time()``, ``uuid4()``, and ``os.urandom()`` smuggle per-run state
    into whatever consumes them.  Duration measurement belongs to
    ``time.perf_counter`` / ``time.monotonic`` (always allowed); the few
    legitimate absolute-time uses (metrics timestamps, catalog provenance
    stamps that never flow into served bits) carry a reasoned suppression.
    """

    code = "DET104"
    name = "wall-clock-entropy"
    description = "wall-clock time or OS entropy read outside measurement code"
    severity = Severity.ERROR
    requires_reason = True

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = context.resolve_call(node)
            if resolved is None:
                continue
            if resolved in _WALL_CLOCK_CALLS:
                module, attribute = resolved
                yield self.finding(
                    context,
                    f"{module}.{attribute}() reads wall-clock time or OS "
                    "entropy; derive values from the request seed, or use "
                    "perf_counter/monotonic for durations",
                    node,
                )
            elif resolved in _IMPLICIT_NOW and len(node.args) <= _IMPLICIT_NOW[resolved]:
                module, attribute = resolved
                yield self.finding(
                    context,
                    f"{module}.{attribute}() without an explicit seconds "
                    "argument defaults to the current wall-clock time",
                    node,
                )
