"""Rule base class and registry for the dancelint framework.

A rule is a small object with a stable ``code`` (``DET101``, ``CON202``,
``ERR301``, ...), a severity, and a ``check(context)`` generator yielding
:class:`~repro.analysis.findings.Finding` objects.  Rules register themselves
with the :func:`register` decorator at import time; the engine instantiates
one of each per run, so rules must be stateless across files (per-file state
lives inside ``check``).

Adding a rule (see ARCHITECTURE.md "Static analysis"):

1. Subclass :class:`Rule` in the matching ``rules_*`` module, pick the next
   free code in its family's range, and decorate with ``@register``.
2. Yield findings through ``context.finding(self.code, ...)`` so spans and
   fingerprints stay consistent.
3. Add a positive and a negative fixture under ``tests/analysis/fixtures/``
   named ``<CODE>_pos.py`` / ``<CODE>_neg.py`` — the fixture self-test in
   ``scripts/check_invariants.py`` picks them up by name and fails CI if
   the rule stops firing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.exceptions import ReproError

#: Framework meta-codes (not backed by Rule subclasses): parse failures and
#: reason-less suppressions of rules that demand a written justification.
PARSE_ERROR = "LNT000"
MISSING_REASON = "LNT001"


class Rule(ABC):
    """One invariant, checkable per file.  Subclasses set the class attrs."""

    code: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    #: Rules where a bare ``# dancelint: disable=CODE`` is not enough — the
    #: suppression must carry a ``-- reason`` (enforced as LNT001).
    requires_reason: bool = False

    @abstractmethod
    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``context``'s file."""

    def finding(
        self,
        context: FileContext,
        message: str,
        node: object = None,
        *,
        line: int | None = None,
    ) -> Finding:
        import ast

        anchor = node if isinstance(node, ast.AST) else None
        return context.finding(
            self.code, message, anchor, line=line, severity=self.severity
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index the rule by its code."""
    rule = rule_class()
    if not rule.code:
        raise ReproError(f"rule {rule_class.__name__} declares no code")
    if rule.code in _REGISTRY:
        raise ReproError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_class


def _load_builtin_rules() -> None:
    """Import the rule modules once so their ``@register`` decorators run."""
    from repro.analysis import rules_concurrency  # noqa: F401
    from repro.analysis import rules_determinism  # noqa: F401
    from repro.analysis import rules_errors  # noqa: F401


def all_rules(select: frozenset[str] | set[str] | None = None) -> list[Rule]:
    """Every registered rule (optionally restricted to ``select`` codes)."""
    _load_builtin_rules()
    rules = [_REGISTRY[code] for code in sorted(_REGISTRY)]
    if select is None:
        return rules
    unknown = set(select) - set(_REGISTRY)
    if unknown:
        raise ReproError(
            f"unknown rule codes: {sorted(unknown)} (known: {sorted(_REGISTRY)})"
        )
    return [rule for rule in rules if rule.code in select]


def get_rule(code: str) -> Rule:
    _load_builtin_rules()
    rule = _REGISTRY.get(code)
    if rule is None:
        raise ReproError(f"unknown rule code {code!r} (known: {sorted(_REGISTRY)})")
    return rule


def rule_codes() -> list[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


def requires_reason(code: str) -> bool:
    """Whether suppressing ``code`` demands a written justification."""
    _load_builtin_rules()
    rule = _REGISTRY.get(code)
    return rule is not None and rule.requires_reason
