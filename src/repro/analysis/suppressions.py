"""Suppression and annotation comment parsing for dancelint.

Two comment conventions are recognised, both line-oriented so they survive
refactors that move code between files:

``# dancelint: disable=CODE[,CODE...][ -- reason]``
    Suppresses findings of the listed codes on the comment's own line; a
    *standalone* comment line (nothing but the comment) also covers the next
    non-blank line, so long statements can carry their suppression above
    them.  Rules marked ``requires_reason`` (the ``hash()`` audit, the
    broad-except contract) reject bare disables: the suppression still
    applies, but the missing justification is itself reported as ``LNT001``.

``# guarded-by: <lock expression>``
    Documents that the attribute assigned on this line (or on the next line,
    for standalone comments) may only be touched while ``<lock expression>``
    is held — enforced by rule CON201 in threaded modules.  The lock
    expression is compared textually against ``with`` context expressions
    (``self._lock``, ``self._cond``, ``self._locks[index]``), so annotate
    with exactly the expression the code uses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

_DISABLE_RE = re.compile(
    r"#\s*dancelint:\s*disable\s*=\s*"
    r"(?P<codes>[A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)
_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>\S.*?)\s*$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``disable=`` comment: the codes it silences and why."""

    line: int
    codes: frozenset[str]
    reason: str | None

    def covers(self, code: str) -> bool:
        return code in self.codes


def _is_standalone_comment(line: str) -> bool:
    stripped = line.strip()
    return stripped.startswith("#")


def _effective_lines(lines: list[str], comment_line: int) -> list[int]:
    """The 1-indexed source lines a comment on ``comment_line`` applies to.

    A trailing comment covers its own line.  A standalone comment covers its
    own line *and* the next non-blank line (skipping further comment lines,
    so a block of annotations above one statement all land on it).
    """
    covered = [comment_line]
    if not _is_standalone_comment(lines[comment_line - 1]):
        return covered
    for offset in range(comment_line + 1, len(lines) + 1):
        text = lines[offset - 1].strip()
        if not text:
            continue
        if text.startswith("#"):
            continue
        covered.append(offset)
        break
    return covered


def parse_suppressions(lines: list[str]) -> dict[int, Suppression]:
    """Map each covered source line to its :class:`Suppression`.

    Later comments win if two suppressions cover the same line (adjacent
    standalone + trailing comments), which keeps the semantics predictable:
    the closest comment to the code decides.
    """
    table: dict[int, Suppression] = {}
    for index, text in enumerate(lines, start=1):
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        suppression = Suppression(line=index, codes=codes, reason=match.group("reason"))
        for covered in _effective_lines(lines, index):
            table[covered] = suppression
    return table


def parse_guards(lines: list[str]) -> Mapping[int, str]:
    """Map each covered source line to its ``guarded-by`` lock expression."""
    table: dict[int, str] = {}
    for index, text in enumerate(lines, start=1):
        match = _GUARDED_BY_RE.search(text)
        if match is None:
            continue
        lock = match.group("lock")
        for covered in _effective_lines(lines, index):
            table[covered] = lock
    return table
