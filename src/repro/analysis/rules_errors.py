"""Typed-error contract rules (ERR3xx).

The HTTP tier (PR 7) maps exception *types* to status codes and typed JSON
bodies — ``SearchError`` → 422, ``StorageError`` → 500, other
:class:`~repro.exceptions.ReproError` → 400, anything else → an opaque 500.
That mapping only stays total if the library raises typed errors everywhere
and broad catches do not swallow them silently, so both halves are rules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, register

#: Builtin exceptions the library must not raise directly: each of these
#: reaching the HTTP boundary becomes an opaque 500 instead of a typed body.
#: (Raising is the contract — *catching* builtins stays fine, and control-flow
#: exceptions such as NotImplementedError / KeyboardInterrupt / SystemExit /
#: GeneratorExit / AssertionError are exempt.)
UNTYPED_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "AttributeError",
        "BaseException",
        "BrokenPipeError",
        "BufferError",
        "ConnectionError",
        "EOFError",
        "Exception",
        "FileExistsError",
        "FileNotFoundError",
        "FloatingPointError",
        "IOError",
        "ImportError",
        "IndexError",
        "InterruptedError",
        "IsADirectoryError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "ModuleNotFoundError",
        "NameError",
        "NotADirectoryError",
        "OSError",
        "OverflowError",
        "PermissionError",
        "RecursionError",
        "ReferenceError",
        "RuntimeError",
        "StopAsyncIteration",
        "StopIteration",
        "SystemError",
        "TypeError",
        "UnboundLocalError",
        "UnicodeDecodeError",
        "UnicodeEncodeError",
        "UnicodeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler's body ends by raising.

    Covers cleanup-and-reraise (``cleanup(); raise``) and wrap-to-typed
    (``raise StorageError(...) from error``) — neither swallows anything,
    so breadth is harmless there.
    """
    return bool(handler.body) and isinstance(handler.body[-1], ast.Raise)


def _exception_names(node: ast.expr | None) -> list[tuple[str, ast.expr]]:
    """The plain names an ``except`` clause or ``raise`` target refers to."""
    if node is None:
        return []
    if isinstance(node, ast.Name):
        return [(node.id, node)]
    if isinstance(node, ast.Tuple):
        names: list[tuple[str, ast.expr]] = []
        for element in node.elts:
            names.extend(_exception_names(element))
        return names
    return []


@register
class BroadExceptRule(Rule):
    """ERR301: no ``except Exception`` / bare ``except`` without a reason.

    A broad catch swallows typed errors (and genuine bugs) before the HTTP
    mapping layer can classify them.  Handlers whose body ends by raising —
    cleanup-and-reraise, wrap-to-typed — swallow nothing and are exempt.  The
    handful of load-bearing broad catches — process-pool initializers that
    must never fail, unpickling (which can raise nearly anything), the HTTP
    boundary itself — carry
    ``# dancelint: disable=ERR301 -- <why the breadth is load-bearing>``.
    """

    code = "ERR301"
    name = "broad-except"
    description = "except Exception / bare except without a written reason"
    severity = Severity.WARNING
    requires_reason = True

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler) or _reraises(node):
                continue
            if node.type is None:
                yield self.finding(
                    context,
                    "bare 'except:' catches everything including SystemExit; "
                    "catch a ReproError subclass, or justify the breadth",
                    node,
                )
                continue
            for name, anchor in _exception_names(node.type):
                if name in _BROAD_NAMES:
                    yield self.finding(
                        context,
                        f"'except {name}' swallows typed errors before the "
                        "HTTP mapping layer sees them; narrow to a ReproError "
                        "subclass, or justify why the breadth is load-bearing",
                        anchor,
                    )


@register
class UntypedRaiseRule(Rule):
    """ERR302: every raised exception is a :class:`ReproError` subclass.

    Raising ``ValueError`` et al. breaks the typed error→status contract.
    Where callers legitimately expect the builtin (``pytest.raises(ValueError)``,
    mapping protocols wanting ``KeyError``), derive a dual-inheritance type —
    ``class MeasureError(ReproError, ValueError)`` — so both contracts hold.
    """

    code = "ERR302"
    name = "untyped-raise"
    description = "raising a builtin exception instead of a ReproError subclass"
    severity = Severity.ERROR

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            for name, anchor in _exception_names(target):
                if name in UNTYPED_EXCEPTIONS:
                    yield self.finding(
                        context,
                        f"raise {name} is invisible to the typed error→status "
                        "mapping; raise a ReproError subclass (dual-inherit "
                        f"from {name} if callers catch the builtin)",
                        anchor,
                    )
