"""Concurrency & resource rules (CON2xx): shared state obeys its locks.

These rules operate only on *threaded modules* — files importing
``threading``, ``concurrent.futures``, ``socketserver``, or ``http.server``
— because that is where another thread can observe a torn update.  The
conventions they enforce are the ones the service tier already follows:

* attributes documented ``# guarded-by: <lock>`` are touched only inside
  ``with <lock>:`` (methods named ``*_locked`` assert the caller holds it,
  and ``__init__`` is exempt — the object is not yet shared);
* shared dicts are iterated via snapshots (``list(d.items())``), the exact
  shape of the PR 7 live-dict bug;
* every ``shared_memory`` segment creation has matching ``close``/``unlink``
  handling in its owner.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, register

#: Method-name suffix asserting "caller holds the lock" (the convention
#: already used across repro.service.session / repro.search.shm).
LOCKED_SUFFIX = "_locked"

#: Methods exempt from lock enforcement: construction and finalisation run
#: before/after the object is reachable from other threads.
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__del__", "__post_init__"})


def _self_attribute(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guarded_attributes(
    class_node: ast.ClassDef, guards: Mapping[int, str]
) -> dict[str, str]:
    """``self.<attr>`` assignments whose line carries a guarded-by annotation."""
    guarded: dict[str, str] = {}
    for node in ast.walk(class_node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            attribute = _self_attribute(target)
            if attribute is None:
                continue
            lock = guards.get(target.lineno)
            if lock is not None:
                guarded[attribute] = lock
    return guarded


def _normalize_lock(expression: str) -> str:
    """Canonical text of a lock expression (whitespace-insensitive compare)."""
    try:
        return ast.unparse(ast.parse(expression, mode="eval").body)
    except SyntaxError:
        return expression.strip()


class _LockWalker:
    """Walks a method body tracking which lock expressions are lexically held.

    Entering a nested function or lambda clears the held set: a closure body
    runs later, possibly after the lock was released, so lexical nesting
    inside ``with`` proves nothing for it.
    """

    def __init__(self) -> None:
        self.accesses: list[tuple[ast.Attribute, frozenset[str]]] = []

    def walk(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, ast.With):
            acquired = {
                _normalize_lock(ast.unparse(item.context_expr))
                for item in node.items
            }
            for item in node.items:
                self.walk(item, held)
            for child in node.body:
                self.walk(child, held | acquired)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for child in ast.iter_child_nodes(node):
                self.walk(child, frozenset())
            return
        if isinstance(node, ast.Attribute) and _self_attribute(node) is not None:
            self.accesses.append((node, held))
        for child in ast.iter_child_nodes(node):
            self.walk(child, held)


@register
class GuardedAttributeRule(Rule):
    """CON201: ``# guarded-by:`` attributes are only touched under their lock.

    Annotate the attribute's assignment in ``__init__`` (trailing comment or
    a standalone comment directly above); every later access anywhere in the
    class must then sit lexically inside ``with <lock>:`` — or in a method
    whose name ends in ``_locked``, the repo's "caller holds the lock"
    convention.
    """

    code = "CON201"
    name = "guarded-attribute"
    description = "guarded-by annotated attribute accessed outside its lock"
    severity = Severity.ERROR

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.is_threaded:
            return
        for class_node in ast.walk(context.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            guarded = _guarded_attributes(class_node, context.guards)
            if not guarded:
                continue
            normalized = {
                attribute: _normalize_lock(lock) for attribute, lock in guarded.items()
            }
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _EXEMPT_METHODS or method.name.endswith(LOCKED_SUFFIX):
                    continue
                walker = _LockWalker()
                for child in method.body:
                    walker.walk(child, frozenset())
                for access, held in walker.accesses:
                    attribute = access.attr
                    lock = normalized.get(attribute)
                    if lock is None or lock in held:
                        continue
                    yield self.finding(
                        context,
                        f"self.{attribute} is '# guarded-by: {guarded[attribute]}' "
                        f"but {class_node.name}.{method.name} touches it outside "
                        f"'with {guarded[attribute]}:' (hold the lock, or mark "
                        f"the method *{LOCKED_SUFFIX})",
                        access,
                    )


def _with_presumes_lock(item_expr: str) -> bool:
    """Whether a ``with`` context expression looks like a self-owned lock."""
    return item_expr.startswith("self.")


@register
class LiveDictIterationRule(Rule):
    """CON202: no iteration over a live shared dict — snapshot it first.

    ``for k, v in self._cache.items():`` raises ``RuntimeError: dictionary
    changed size during iteration`` the moment another thread inserts (the
    PR 7 ``_adopt_encodings_from`` bug under concurrent serve load).
    Iterate ``list(self._cache.items())`` instead, or hold the dict's
    guarding lock around the loop (iterations lexically inside a ``with
    self.<anything>:`` block are presumed lock-protected).
    """

    code = "CON202"
    name = "live-dict-iteration"
    description = "iterating a shared self.* dict without snapshotting it"
    severity = Severity.ERROR

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.is_threaded:
            return
        for class_node in ast.walk(context.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _EXEMPT_METHODS or method.name.endswith(LOCKED_SUFFIX):
                    continue
                yield from self._check_method(context, method)

    def _check_method(
        self, context: FileContext, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        walker = _IterationWalker()
        for child in method.body:
            walker.walk(child, under_lock=False)
        for iterable in walker.live_iterations:
            view = iterable.func.attr  # type: ignore[attr-defined]
            owner = ast.unparse(iterable.func.value)  # type: ignore[attr-defined]
            yield self.finding(
                context,
                f"iterating {owner}.{view}() live in a threaded class; another "
                f"thread mutating it mid-loop raises RuntimeError — iterate "
                f"list({owner}.{view}()) or hold the guarding lock",
                iterable,
            )


class _IterationWalker:
    """Finds ``self.X.items()/keys()/values()`` used as a live iterable."""

    _VIEWS = frozenset({"items", "keys", "values"})

    def __init__(self) -> None:
        self.live_iterations: list[ast.Call] = []

    def _is_live_view(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._VIEWS
            and _self_attribute(node.func.value) is not None
        )

    def walk(self, node: ast.AST, under_lock: bool) -> None:
        if isinstance(node, ast.With):
            locked = under_lock or any(
                _with_presumes_lock(ast.unparse(item.context_expr))
                for item in node.items
            )
            for child in node.body:
                self.walk(child, locked)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for child in ast.iter_child_nodes(node):
                self.walk(child, False)
            return
        iterables: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables = [generator.iter for generator in node.generators]
        if not under_lock:
            for iterable in iterables:
                if self._is_live_view(iterable):
                    self.live_iterations.append(iterable)  # type: ignore[arg-type]
        for child in ast.iter_child_nodes(node):
            self.walk(child, under_lock)


@register
class SharedMemoryLifecycleRule(Rule):
    """CON203: shared-memory segments need ``close``/``unlink`` handling.

    A ``SharedMemory(create=True)`` segment outlives the process unless
    someone unlinks it (``scripts/check_shm_leaks.py`` hunts the stragglers
    dynamically; this rule catches them at lint time).  The creating
    function's class — or the module, for free functions — must contain both
    a ``.close()`` and a ``.unlink()`` call, i.e. own the segment lifecycle
    the way :class:`repro.search.shm.SharedColumnStore` does.
    """

    code = "CON203"
    name = "shm-lifecycle"
    description = "SharedMemory(create=True) without close/unlink in its owner"
    severity = Severity.ERROR

    def check(self, context: FileContext) -> Iterator[Finding]:
        creations = [
            node
            for node in ast.walk(context.tree)
            if self._creates_segment(node)
        ]
        if not creations:
            return
        owners = self._owners(context.tree)
        for creation in creations:
            owner = owners.get(id(creation), context.tree)
            cleanup = {
                node.func.attr
                for node in ast.walk(owner)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink")
            }
            missing = {"close", "unlink"} - cleanup
            if missing:
                scope = (
                    f"class {owner.name}"
                    if isinstance(owner, ast.ClassDef)
                    else "this module"
                )
                yield self.finding(
                    context,
                    f"SharedMemory(create=True) but {scope} never calls "
                    f"{' or '.join(sorted(missing))}(); segments must be "
                    "closed and unlinked on every path",
                    creation,
                )

    @staticmethod
    def _creates_segment(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        named = (
            isinstance(func, ast.Attribute) and func.attr == "SharedMemory"
        ) or (isinstance(func, ast.Name) and func.id == "SharedMemory")
        if not named:
            return False
        return any(
            keyword.arg == "create"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in node.keywords
        )

    @staticmethod
    def _owners(tree: ast.Module) -> dict[int, ast.ClassDef]:
        """Map creation-site node ids to their innermost enclosing class."""
        owners: dict[int, ast.ClassDef] = {}

        def visit(node: ast.AST, enclosing: ast.ClassDef | None) -> None:
            if isinstance(node, ast.ClassDef):
                enclosing = node
            elif enclosing is not None and SharedMemoryLifecycleRule._creates_segment(
                node
            ):
                owners[id(node)] = enclosing
            for child in ast.iter_child_nodes(node):
                visit(child, enclosing)

        visit(tree, None)
        return owners
