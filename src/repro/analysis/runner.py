"""The ``repro-dance lint`` front-end, shared with ``check_invariants.py``.

Kept inside the package (rather than in ``repro.cli``) so the CI script can
drive the exact same argument handling without importing the full CLI and
its workload dependencies.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.report import format_json, format_rules, format_text
from repro.exceptions import ReproError

#: Where the repo's accepted-debt baseline ships (relative to the repo root).
DEFAULT_BASELINE = Path("scripts") / "dancelint_baseline.json"


def run_lint(
    paths: Sequence[str | Path],
    *,
    output_format: str = "text",
    baseline_path: str | Path | None = None,
    write_baseline: str | Path | None = None,
    select: Sequence[str] | None = None,
    root: Path | None = None,
    stream: TextIO | None = None,
) -> int:
    """Lint ``paths`` and print a report; returns the process exit code.

    ``0``: clean (after suppressions and baseline).  ``1``: findings.
    ``2``: usage / configuration errors (unknown rule code, unreadable
    baseline).  With ``write_baseline`` the current findings are persisted as
    the new accepted debt and the run exits ``0``.
    """
    stream = stream if stream is not None else sys.stdout
    if output_format not in ("text", "json"):
        print(f"error: unknown format {output_format!r}", file=sys.stderr)
        return 2
    try:
        baseline = (
            Baseline.load(baseline_path) if baseline_path is not None else None
        )
        result = lint_result(
            paths, baseline=baseline, select=select, root=root
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if write_baseline is not None:
        Baseline.from_findings(result.findings).write(write_baseline)
        print(
            f"wrote baseline with {len(result.findings)} finding(s) "
            f"to {write_baseline}",
            file=stream,
        )
        return 0
    if output_format == "json":
        stream.write(format_json(result))
    else:
        print(format_text(result), file=stream)
    return 0 if result.ok else 1


def lint_result(
    paths: Sequence[str | Path],
    *,
    baseline: Baseline | None = None,
    select: Sequence[str] | None = None,
    root: Path | None = None,
) -> LintResult:
    """The library form of :func:`run_lint` (no printing, no exit codes)."""
    return lint_paths(
        paths,
        select=frozenset(select) if select else None,
        baseline=baseline,
        root=root,
    )


def explain_rules(stream: TextIO | None = None) -> int:
    print(format_rules(), file=stream if stream is not None else sys.stdout)
    return 0
