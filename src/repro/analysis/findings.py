"""Finding and severity value objects for the dancelint framework.

A :class:`Finding` is one rule violation at one source span.  Findings are
plain frozen dataclasses so rules can yield them cheaply, reports can sort
them deterministically, and the baseline can fingerprint them by content
(rule code + the source line's text) rather than by line number — edits
elsewhere in a file must not invalidate the baseline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum


class Severity(str, Enum):
    """How a finding gates CI: errors fail strict runs, warnings advise."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation: code, message, and the source span it anchors to.

    ``source_line`` carries the stripped text of the offending line; it feeds
    the baseline fingerprint (stable under unrelated edits) and the text
    report's context display.
    """

    code: str
    message: str
    path: str
    line: int
    column: int = 0
    severity: Severity = Severity.ERROR
    source_line: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Content fingerprint for baseline matching: code + line text.

        Deliberately excludes the line *number* so pre-existing debt stays
        baselined while unrelated lines are inserted or removed above it.
        """
        digest = hashlib.blake2b(
            f"{self.code}:{self.source_line}".encode("utf-8"), digest_size=8
        )
        return digest.hexdigest()

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.code)

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """The one-line text form: ``path:line:col CODE [severity] message``."""
        return (
            f"{self.path}:{self.line}:{self.column} "
            f"{self.code} [{self.severity.value}] {self.message}"
        )
