"""Persisted finding baselines: pre-existing debt must not block CI.

A baseline is a JSON file mapping ``(path, rule code, content fingerprint)``
to an occurrence count.  Fingerprints hash the rule code plus the offending
*line's text* (never its number), so inserting or deleting unrelated lines
does not un-baseline debt — but editing the flagged line itself does, which
is exactly when the author should resolve or re-justify it.

The shipped baseline lives at ``scripts/dancelint_baseline.json`` and is
applied by ``repro-dance lint --baseline`` and ``scripts/check_invariants.py``;
regenerate it with ``repro-dance lint --write-baseline PATH`` after
deliberately accepting new debt (reviewers see the diff).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.exceptions import ReproError

BASELINE_VERSION = 1


class Baseline:
    """An occurrence-counted set of accepted findings."""

    def __init__(self, entries: dict[tuple[str, str, str], int] | None = None) -> None:
        self._entries: dict[tuple[str, str, str], int] = dict(entries or {})

    def __len__(self) -> int:
        return sum(self._entries.values())

    @staticmethod
    def _key(finding: Finding) -> tuple[str, str, str]:
        return (finding.path, finding.code, finding.fingerprint)

    # --------------------------------------------------------------- matching
    def filter(self, findings: Iterable[Finding]) -> tuple[list[Finding], int]:
        """Split findings into (new, number baselined).

        Matching is count-aware: a baseline entry with count 2 absorbs at
        most two identical findings, so *adding* a third occurrence of
        already-baselined debt is still reported.
        """
        remaining = Counter(self._entries)
        fresh: list[Finding] = []
        absorbed = 0
        for finding in findings:
            key = self._key(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                absorbed += 1
            else:
                fresh.append(finding)
        return fresh, absorbed

    # ------------------------------------------------------------ persistence
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts = Counter(cls._key(finding) for finding in findings)
        return cls(dict(counts))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise ReproError(f"baseline file {path} does not exist") from None
        except (OSError, json.JSONDecodeError) as error:
            raise ReproError(f"cannot read baseline {path}: {error}") from error
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ReproError(f"baseline {path} is not a dancelint baseline file")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ReproError(
                f"baseline {path} has version {version!r}; "
                f"this dancelint reads version {BASELINE_VERSION}"
            )
        entries: dict[tuple[str, str, str], int] = {}
        for entry in payload["entries"]:
            key = (entry["path"], entry["code"], entry["fingerprint"])
            entries[key] = int(entry.get("count", 1))
        return cls(entries)

    def write(self, path: str | Path) -> None:
        """Persist sorted entries (stable diffs) with their source context."""
        entries = [
            {"path": key[0], "code": key[1], "fingerprint": key[2], "count": count}
            for key, count in sorted(self._entries.items())
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def to_dict(self) -> dict[str, object]:
        return {
            "version": BASELINE_VERSION,
            "entries": [
                {"path": key[0], "code": key[1], "fingerprint": key[2], "count": count}
                for key, count in sorted(self._entries.items())
            ],
        }

    @classmethod
    def merge(cls, baselines: Sequence["Baseline"]) -> "Baseline":
        merged: Counter[tuple[str, str, str]] = Counter()
        for baseline in baselines:
            merged.update(baseline._entries)
        return cls(dict(merged))
