"""dancelint: AST-based determinism & concurrency invariant checking (PR 10).

Every optimisation since PR 1 ships under the contract "served bits are
identical to the serial reference", but that contract was enforced only
dynamically, by parity scripts replaying one TPC-H scenario.  This package
makes the invariants checkable at *lint* time: a visitor-based rule registry
over the stdlib :mod:`ast` module, per-file findings with code / severity /
span, a ``# dancelint: disable=RULE`` suppression syntax, and a persisted
baseline so pre-existing debt does not block CI.

Two rule families ship (see :mod:`repro.analysis.rules_determinism`,
:mod:`repro.analysis.rules_concurrency`, and
:mod:`repro.analysis.rules_errors`):

* **Determinism** — unseeded RNG streams, ``PYTHONHASHSEED``-salted
  ``hash()``, iteration over unordered sets feeding fold order or results,
  wall-clock / entropy reads outside measurement code.
* **Concurrency & resources** — ``# guarded-by:`` lock annotations enforced
  at every attribute access, live shared-dict iteration without the snapshot
  pattern (the PR 7 bug, now a rule), shared-memory segments without
  ``close``/``unlink``, and the typed-error contract (:class:`ReproError`
  subclasses only).

Surfaced three ways: the ``repro-dance lint`` CLI subcommand, the
``scripts/check_invariants.py`` CI gate, and the importable API below.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.context import FileContext
from repro.analysis.engine import LintResult, lint_paths, lint_source
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, all_rules, get_rule, rule_codes

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "rule_codes",
]
