"""The dancelint engine: file discovery, rule execution, suppression logic.

:func:`lint_paths` is the one entry point every surface shares — the
``repro-dance lint`` CLI subcommand, ``scripts/check_invariants.py``, and the
test suite all call it, so suppression and baseline semantics cannot drift
between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import MISSING_REASON, PARSE_ERROR, Rule, all_rules
from repro.analysis.suppressions import parse_suppressions
from repro.exceptions import ReproError


@dataclass
class LintResult:
    """Outcome of one lint run over a set of paths."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "files_checked": self.files_checked,
                "errors": self.errors,
                "warnings": self.warnings,
                "suppressed": self.suppressed,
                "baselined": self.baselined,
            },
        }


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, sorted for deterministic reports."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ReproError(f"lint path {path} does not exist")
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _apply_suppressions(
    context: FileContext, findings: list[Finding], rules_by_code: dict[str, Rule]
) -> tuple[list[Finding], int]:
    """Drop suppressed findings; flag reason-less suppressions of audited rules."""
    table = parse_suppressions(context.lines)
    kept: list[Finding] = []
    suppressed = 0
    flagged_bare: set[int] = set()
    for finding in findings:
        suppression = table.get(finding.line)
        if suppression is None or not suppression.covers(finding.code):
            kept.append(finding)
            continue
        suppressed += 1
        rule = rules_by_code.get(finding.code)
        needs_reason = rule is not None and rule.requires_reason
        if needs_reason and not suppression.reason and suppression.line not in flagged_bare:
            flagged_bare.add(suppression.line)
            kept.append(
                context.finding(
                    MISSING_REASON,
                    f"suppressing {finding.code} requires a justification: "
                    f"'# dancelint: disable={finding.code} -- <reason>'",
                    line=suppression.line,
                )
            )
    return kept, suppressed


def lint_source(
    source: str,
    *,
    path: str | Path = "<string>",
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Lint one source string; suppression-filtered, baseline-free."""
    active = list(rules) if rules is not None else all_rules()
    context = FileContext(path, source, root=root)
    try:
        context.tree
    except SyntaxError as error:
        return [
            context.finding(
                PARSE_ERROR,
                f"cannot parse file: {error.msg}",
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
            )
        ]
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.check(context))
    rules_by_code = {rule.code: rule for rule in active}
    kept, _ = _apply_suppressions(context, findings, rules_by_code)
    kept.sort(key=Finding.sort_key)
    return kept


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    ``select`` restricts to specific rule codes; ``baseline`` absorbs known
    debt (count-aware, see :class:`~repro.analysis.baseline.Baseline`);
    ``root`` relativises the reported paths (defaults to the current
    directory, falling back to absolute paths outside it).
    """
    active = all_rules(frozenset(select) if select is not None else None)
    rules_by_code = {rule.code: rule for rule in active}
    result = LintResult()
    root = root if root is not None else Path.cwd()
    collected: list[Finding] = []
    for file_path in discover_files(paths):
        result.files_checked += 1
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            raise ReproError(f"cannot read {file_path}: {error}") from error
        context = FileContext(file_path, source, root=root)
        try:
            context.tree
        except SyntaxError as error:
            collected.append(
                context.finding(
                    PARSE_ERROR,
                    f"cannot parse file: {error.msg}",
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                )
            )
            continue
        file_findings: list[Finding] = []
        for rule in active:
            file_findings.extend(rule.check(context))
        kept, suppressed = _apply_suppressions(context, file_findings, rules_by_code)
        result.suppressed += suppressed
        collected.extend(kept)
    if baseline is not None:
        collected, absorbed = baseline.filter(collected)
        result.baselined = absorbed
    collected.sort(key=Finding.sort_key)
    result.findings = collected
    return result
