"""Render dancelint results as human text or machine JSON.

Both formats are deterministic functions of the findings (sorted by path,
line, column, code), so CI artifacts diff cleanly across runs.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult
from repro.analysis.rules import all_rules


def format_text(result: LintResult, *, show_source: bool = True) -> str:
    """The terminal report: one line per finding plus a summary footer."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
        if show_source and finding.source_line:
            lines.append(f"    {finding.source_line}")
    footer = (
        f"{len(result.findings)} finding(s) "
        f"({result.errors} error(s), {result.warnings} warning(s)) "
        f"in {result.files_checked} file(s)"
    )
    extras: list[str] = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        footer += f" [{', '.join(extras)}]"
    lines.append(footer)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"


def format_rules() -> str:
    """The ``--explain`` listing: every registered rule with its contract."""
    lines: list[str] = []
    for rule in all_rules():
        reason = " (suppression requires a reason)" if rule.requires_reason else ""
        lines.append(f"{rule.code} {rule.name} [{rule.severity.value}]{reason}")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)
