"""Per-file analysis context shared by every dancelint rule.

A :class:`FileContext` owns the parsed tree, the raw source lines, the
import table (so rules can resolve ``random.Random`` through aliases like
``import random as rnd`` or ``from random import Random``), the parsed
``# guarded-by:`` annotations, and the *threaded-module* classification the
concurrency rules scope themselves to.
"""

from __future__ import annotations

import ast
from functools import cached_property
from pathlib import Path
from typing import Mapping

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import parse_guards

#: Importing any of these marks a module as *threaded*: its shared state is
#: reachable from more than one thread, so the concurrency rules apply.
THREADING_MODULES = frozenset(
    {"threading", "concurrent.futures", "socketserver", "http.server"}
)


class FileContext:
    """Everything a rule needs to analyse one file."""

    def __init__(self, path: str | Path, source: str, *, root: Path | None = None) -> None:
        self.path = Path(path)
        self.source = source
        self.lines: list[str] = source.splitlines()
        if root is not None:
            try:
                display = self.path.resolve().relative_to(root.resolve())
            except ValueError:
                display = self.path
        else:
            display = self.path
        self.display_path = display.as_posix()

    # ------------------------------------------------------------- structure
    @cached_property
    def tree(self) -> ast.Module:
        """The parsed module; :class:`SyntaxError` propagates to the engine."""
        return ast.parse(self.source, filename=str(self.path))

    @cached_property
    def imported_modules(self) -> Mapping[str, str]:
        """Local alias → module name for every ``import`` statement."""
        table: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = alias.name
        return table

    @cached_property
    def imported_names(self) -> Mapping[str, tuple[str, str]]:
        """Local alias → ``(module, original name)`` for ``from`` imports."""
        table: dict[str, tuple[str, str]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                for alias in node.names:
                    table[alias.asname or alias.name] = (node.module, alias.name)
        return table

    @cached_property
    def is_threaded(self) -> bool:
        """Whether this module's state is reachable from multiple threads."""
        if any(
            module in THREADING_MODULES or module.split(".")[0] == "threading"
            for module in self.imported_modules.values()
        ):
            return True
        return any(
            module in THREADING_MODULES
            for module, _ in self.imported_names.values()
        )

    @cached_property
    def guards(self) -> Mapping[int, str]:
        """Line → lock expression from ``# guarded-by:`` annotations."""
        return parse_guards(self.lines)

    # ------------------------------------------------------------ resolution
    def resolve_call(self, node: ast.Call) -> tuple[str, str] | None:
        """Resolve a call to ``(module, attribute)`` through the import table.

        ``random.Random(...)`` resolves to ``("random", "Random")`` whether
        the module was imported plainly, aliased, or the name was imported
        with ``from random import Random``.  Calls that cannot be traced to
        an imported module (methods, local helpers) resolve to ``None``.
        """
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = self.imported_modules.get(func.value.id)
            if module is not None:
                return (module, func.attr)
            return None
        if isinstance(func, ast.Name):
            origin = self.imported_names.get(func.id)
            if origin is not None:
                return origin
        return None

    # --------------------------------------------------------------- output
    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self,
        code: str,
        message: str,
        node: ast.AST | None = None,
        *,
        line: int | None = None,
        column: int | None = None,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a :class:`Finding` anchored to ``node`` (or an explicit line)."""
        anchor_line = line if line is not None else getattr(node, "lineno", 1)
        anchor_column = (
            column if column is not None else getattr(node, "col_offset", 0)
        )
        return Finding(
            code=code,
            message=message,
            path=self.display_path,
            line=anchor_line,
            column=anchor_column,
            severity=severity,
            source_line=self.source_line(anchor_line),
        )
