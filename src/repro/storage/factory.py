"""Backend construction, catalog opening, and atomic persistence.

Three concerns live here so the backends themselves stay dumb byte stores:

* :func:`create_backend` — build a backend by kind, degrading ``duckdb`` to
  ``sqlite`` with a ``RuntimeWarning`` when duckdb is not importable (the
  same contract as the numpy fallback in :mod:`repro.relational.backend`).
* :func:`open_backend` / :func:`detect_kind` — open an *existing* catalog
  file, sniffing the engine from the file's magic bytes and raising a typed
  :class:`~repro.exceptions.StorageError` for missing or corrupt files.
* :func:`atomic_persist` — run a writer against a temp file next to the
  target and ``os.replace`` it into place, so a crash mid-persist can never
  leave a half-written catalog where a good one used to be.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

from repro.exceptions import StorageError
from repro.storage.base import (
    DUCKDB,
    MEMORY,
    SQLITE,
    CatalogBackend,
    normalize_kind,
)
from repro.storage.duckdb import DuckDBBackend, duckdb_available
from repro.storage.memory import InMemoryBackend
from repro.storage.sqlite import SQLiteBackend

#: First 16 bytes of every sqlite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"
#: duckdb files carry the literal "DUCK" tag inside the first block.
_DUCKDB_MAGIC = b"DUCK"


def create_backend(
    kind: str | None = None, path: str | Path | None = None
) -> CatalogBackend:
    """Build a fresh backend of ``kind`` (default inferred from ``path``).

    With no ``kind``, a ``path`` implies sqlite and no ``path`` implies the
    in-memory backend.  Requesting ``duckdb`` when the module is not
    importable emits a ``RuntimeWarning`` and returns a sqlite backend at the
    same path instead — catalogs must never become unreadable just because an
    optional dependency is absent.
    """
    canonical = normalize_kind(kind)
    if canonical is None:
        canonical = MEMORY if path is None else SQLITE
    if canonical == MEMORY:
        if path is not None:
            raise StorageError("the in-memory backend does not take a path")
        return InMemoryBackend()
    if path is None:
        raise StorageError(f"the {canonical} backend requires a catalog path")
    if canonical == DUCKDB:
        if duckdb_available():
            return DuckDBBackend(path)
        warnings.warn(
            "duckdb is not importable; falling back to the sqlite catalog "
            "backend (install duckdb to silence this warning)",
            RuntimeWarning,
            stacklevel=2,
        )
        canonical = SQLITE
    return SQLiteBackend(path)


def detect_kind(path: str | Path) -> str:
    """Sniff which engine wrote the catalog file at ``path`` from its header.

    Raises :class:`~repro.exceptions.StorageError` when the file is missing,
    unreadable, or carries neither engine's magic bytes.
    """
    target = Path(path)
    if not target.exists():
        raise StorageError(f"no catalog at {target}")
    if target.is_dir():
        raise StorageError(f"{target} is a directory, not a catalog file")
    try:
        with open(target, "rb") as handle:
            header = handle.read(4096)
    except OSError as error:
        raise StorageError(f"cannot read catalog at {target}: {error}") from error
    if header.startswith(_SQLITE_MAGIC):
        return SQLITE
    if _DUCKDB_MAGIC in header[:64]:
        return DUCKDB
    raise StorageError(
        f"{target} is not a recognised catalog file "
        "(neither sqlite nor duckdb header)"
    )


def open_backend(
    source: str | Path | CatalogBackend, *, kind: str | None = None
) -> CatalogBackend:
    """Open an existing catalog and validate its schema version.

    ``source`` may be a backend instance (validated and returned as-is) or a
    path; for a path the engine is taken from ``kind`` when given, otherwise
    sniffed from the file's magic bytes.  Opening a duckdb catalog without
    duckdb installed is a hard :class:`~repro.exceptions.StorageError` — a
    silent sqlite fallback would misread the file.
    """
    if isinstance(source, CatalogBackend):
        source.check_schema_version()
        return source
    detected = normalize_kind(kind) or detect_kind(source)
    if detected == MEMORY:
        raise StorageError("cannot open an in-memory catalog from a path")
    if detected == DUCKDB:
        if not duckdb_available():
            raise StorageError(
                f"the catalog at {source} is a duckdb database but duckdb is "
                "not importable; install duckdb or re-persist via sqlite"
            )
        backend: CatalogBackend = DuckDBBackend(source)
    else:
        backend = SQLiteBackend(source)
    try:
        backend.check_schema_version()
    except StorageError:
        backend.close()
        raise
    return backend


def atomic_persist(path: str | Path, kind: str | None, writer) -> Path:
    """Write a catalog to ``path`` atomically via a sibling temp file.

    ``writer`` receives a fresh backend rooted at the temp path, fills it,
    and returns; the temp file then replaces ``path`` in one ``os.replace``.
    On any failure the temp file is removed and ``path`` keeps its previous
    contents — persist is all-or-nothing.
    """
    target = Path(path)
    if target.parent and not target.parent.exists():
        raise StorageError(f"catalog directory {target.parent} does not exist")
    scratch = target.with_name(f"{target.name}.tmp{os.getpid()}")
    try:
        with create_backend(kind or SQLITE, scratch) as backend:
            writer(backend)
        os.replace(scratch, target)
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise
    return target
