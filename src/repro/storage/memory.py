"""The in-memory catalog backend: plain dicts, no disk.

This is the default backend and the reference implementation: attaching one to
a marketplace preserves the pre-storage-layer behaviour exactly (everything
lives in process RAM), while exposing the same :class:`CatalogBackend` surface
as the disk backends — so persist→reopen round-trips can be tested without
touching the filesystem, and the parity suite can diff the disk backends
against it byte for byte.
"""

from __future__ import annotations

from repro.storage.base import MEMORY, CatalogBackend, meta_dumps, meta_loads


class InMemoryBackend(CatalogBackend):
    """A catalog held in process memory (``path`` is always ``None``)."""

    kind = MEMORY

    def __init__(self) -> None:
        super().__init__(path=None)
        self._blobs: dict[str, dict[str, bytes]] = {}
        # Metadata round-trips through JSON text so that values which would
        # not survive a disk backend (tuples, sets) fail here too.
        self._meta: dict[str, str] = {}
        self._closed = False

    # ------------------------------------------------------------- raw blobs
    def put(self, namespace: str, key: str, payload: bytes) -> None:
        self._blobs.setdefault(namespace, {})[key] = bytes(payload)

    def get(self, namespace: str, key: str) -> bytes | None:
        return self._blobs.get(namespace, {}).get(key)

    def delete(self, namespace: str, key: str) -> None:
        self._blobs.get(namespace, {}).pop(key, None)

    def keys(self, namespace: str) -> list[str]:
        return sorted(self._blobs.get(namespace, {}))

    def namespaces(self) -> list[str]:
        return sorted(ns for ns, blobs in self._blobs.items() if blobs)

    # -------------------------------------------------------------- metadata
    def put_meta(self, key: str, value: object) -> None:
        self._meta[key] = meta_dumps(value)

    def get_meta(self, key: str, default: object = None) -> object:
        text = self._meta.get(key)
        return default if text is None else meta_loads(text)

    # -------------------------------------------------------------- lifecycle
    def flush(self) -> None:
        pass

    def close(self) -> None:
        # Unlike the disk backends the data intentionally survives close():
        # an in-memory catalog *is* the live object, there is nothing to
        # release, and persist()/open() pairs hand the same instance around.
        self._closed = True

    def clear(self) -> None:
        """Drop every blob and metadata entry (used by full re-persists)."""
        self._blobs.clear()
        self._meta.clear()
