"""Pluggable catalog storage: persist the marketplace, graph, and caches.

See :mod:`repro.storage.base` for the backend contract and the namespace
layout; :mod:`repro.storage.factory` for construction/opening/atomic
persistence; :mod:`repro.storage.serialize` for the payload formats; and
:mod:`repro.storage.lazy` for lazily hydrated datasets.
"""

from repro.storage.base import (
    DUCKDB,
    MEMORY,
    META_CREATED,
    META_KIND,
    META_MARKETPLACE,
    META_OFFLINE,
    META_SCHEMA_VERSION,
    NS_DATASETS,
    NS_ENCODINGS,
    NS_OFFLINE,
    NS_SESSION,
    NS_TABLES,
    SCHEMA_VERSION,
    SQLITE,
    CatalogBackend,
    normalize_kind,
)
from repro.storage.duckdb import DuckDBBackend, duckdb_available
from repro.storage.factory import (
    atomic_persist,
    create_backend,
    detect_kind,
    open_backend,
)
from repro.storage.lazy import StoredDataset
from repro.storage.memory import InMemoryBackend
from repro.storage.serialize import (
    encodings_to_blob,
    fingerprint_tables,
    graph_state_fingerprint,
    ji_weights_from_spec,
    ji_weights_to_spec,
    restore_encodings,
    table_fingerprint,
    table_from_blob,
    table_to_blob,
)
from repro.storage.sqlite import SQLiteBackend

__all__ = [
    "CatalogBackend",
    "DuckDBBackend",
    "InMemoryBackend",
    "SQLiteBackend",
    "StoredDataset",
    "SCHEMA_VERSION",
    "MEMORY",
    "SQLITE",
    "DUCKDB",
    "NS_TABLES",
    "NS_ENCODINGS",
    "NS_DATASETS",
    "NS_OFFLINE",
    "NS_SESSION",
    "META_SCHEMA_VERSION",
    "META_KIND",
    "META_CREATED",
    "META_MARKETPLACE",
    "META_OFFLINE",
    "normalize_kind",
    "duckdb_available",
    "create_backend",
    "open_backend",
    "detect_kind",
    "atomic_persist",
    "table_fingerprint",
    "fingerprint_tables",
    "graph_state_fingerprint",
    "table_to_blob",
    "table_from_blob",
    "encodings_to_blob",
    "restore_encodings",
    "ji_weights_to_spec",
    "ji_weights_from_spec",
]
