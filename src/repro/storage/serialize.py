"""Serialisation of catalog artifacts: tables, encodings, JI weights, memos.

Everything a catalog persists goes through this module, which fixes two
invariants the parity tests rely on:

* **Backend-neutral payloads.**  Column encodings are stored as plain python
  code lists (``ColumnEncoding.code_list``) and rebuilt through
  :func:`repro.relational.backend.make_codes` on load, so a catalog written
  under the numpy columnar backend rehydrates bit-identically under the
  pure-python backend and vice versa.
* **Content fingerprints, not identity.**  The in-process incremental-refresh
  machinery proves cache validity by object identity
  (``JoinGraph(reuse_cache_from=...)``), which cannot survive a process
  restart.  Persisted JI weights, discovered FDs, and session memos instead
  carry a blake2b *content* fingerprint per instance table; on a warm open
  they are adopted only for instances whose rebuilt samples hash to the same
  fingerprint — the conservative cross-process analogue of the identity check
  (a changed sample can never resurrect a stale weight).

Payloads are pickled at a pinned protocol so the same catalog opens across the
supported python versions; a fingerprint mismatch (e.g. across incompatible
pickle output) only ever costs a recompute, never correctness.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Mapping

from repro.exceptions import StorageError
from repro.relational import backend as _backend
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import ColumnEncoding, Table

#: Pinned pickle protocol: available on every supported python, stable output.
PICKLE_PROTOCOL = 4


def dumps(obj: object) -> bytes:
    """Pickle ``obj`` for storage, wrapping failures into StorageError."""
    try:
        return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as error:
        raise StorageError(f"cannot serialise catalog payload: {error}") from error


def loads(payload: bytes) -> object:
    """Unpickle a stored payload, wrapping failures into StorageError."""
    try:
        return pickle.loads(payload)
    except Exception as error:  # unpickling can raise nearly anything
        raise StorageError(f"corrupt catalog payload: {error}") from error


# ------------------------------------------------------------------ fingerprints
def table_fingerprint(table: Table) -> str:
    """Content digest of one table: name, typed schema, and every column.

    Two tables with equal name, schema, and cell values produce the same
    fingerprint in any process — the substrate for adopting persisted JI
    weights and FDs after a restart (sampling is deterministic, so unchanged
    source data reproduces unchanged samples, which reproduce this digest).
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(table.name).encode())
    for attribute in table.schema:
        digest.update(repr((attribute.name, attribute.type.value)).encode())
    for name in table.schema.names:
        digest.update(
            pickle.dumps(table.column(name), protocol=PICKLE_PROTOCOL)
        )
    return digest.hexdigest()


def fingerprint_tables(tables: Mapping[str, Table]) -> dict[str, str]:
    return {name: table_fingerprint(table) for name, table in tables.items()}


def graph_state_fingerprint(tables: Mapping[str, Table], revision: int) -> str:
    """Digest of a join graph's full table state plus its revision counter.

    Session caches (Step-1 memo, evaluation-time JI cache) are only restored
    into a graph whose state hashes identically to the one they were
    persisted from — Step-1 memo keys embed ``JoinGraph.revision``, so the
    revision is part of the state.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(revision).encode())
    for name in sorted(tables):
        digest.update(name.encode())
        digest.update(table_fingerprint(tables[name]).encode())
    return digest.hexdigest()


# ------------------------------------------------------------------ tables
def schema_to_spec(schema: Schema) -> list[tuple[str, str]]:
    return [(attribute.name, attribute.type.value) for attribute in schema]


def schema_from_spec(spec) -> Schema:
    try:
        return Schema([Attribute(name, AttributeType(kind)) for name, kind in spec])
    except (TypeError, ValueError) as error:
        raise StorageError(f"corrupt schema specification: {error}") from error


def table_to_blob(table: Table) -> bytes:
    """Serialise one table's data (schema + columns; caches travel separately)."""
    return dumps(
        {
            "name": table.name,
            "schema": schema_to_spec(table.schema),
            "columns": {name: table.column(name) for name in table.schema.names},
        }
    )


def table_from_blob(payload: bytes) -> Table:
    spec = loads(payload)
    if not isinstance(spec, dict) or not {"name", "schema", "columns"} <= set(spec):
        raise StorageError("corrupt table payload (missing name/schema/columns)")
    schema = schema_from_spec(spec["schema"])
    return Table(spec["name"], schema, spec["columns"])


# ------------------------------------------------------------------ encodings
def encodings_to_blob(table: Table) -> bytes:
    """Serialise a table's cached dictionary encodings and entropy statistics.

    Only what the table has already computed is stored (the caches are lazy);
    codes are flattened to plain lists so the payload is columnar-backend
    neutral.
    """
    encodings = [
        (key, encoding.code_list(), list(encoding.values))
        for key, encoding in table._encodings.items()
    ]
    stats = {key: value for key, value in table._stats.items() if key[0] == "entropy"}
    return dumps({"encodings": encodings, "stats": stats})


def restore_encodings(table: Table, payload: bytes) -> int:
    """Install persisted encodings/stats on ``table``; returns how many.

    Codes re-enter through :func:`repro.relational.backend.make_codes`, so
    they materialise in the *active* columnar backend's container whatever
    backend produced them — rehydration instead of re-encoding, with
    bit-identical downstream statistics.
    """
    spec = loads(payload)
    if not isinstance(spec, dict):
        raise StorageError("corrupt encodings payload")
    restored = 0
    for key, codes, values in spec.get("encodings", ()):
        table._encodings.setdefault(
            tuple(key), ColumnEncoding(_backend.make_codes(codes), list(values))
        )
        restored += 1
    for key, value in spec.get("stats", {}).items():
        table._stats.setdefault(tuple(key), value)
    return restored


# ------------------------------------------------------------------ JI weights
def ji_weights_to_spec(
    ji_cache: Mapping[tuple, float]
) -> list[tuple[str, str, tuple, float]]:
    """Flatten a JI cache (frozenset attrs) into a stable, picklable list."""
    return sorted(
        (left, right, tuple(sorted(attrs)), weight)
        for (left, right, attrs), weight in ji_cache.items()
    )


def ji_weights_from_spec(
    spec, fingerprints: Mapping[str, str], current: Mapping[str, str]
) -> dict[tuple[str, str, frozenset], float]:
    """Rebuild the JI cache, keeping only entries whose endpoints are unchanged.

    ``fingerprints`` are the per-instance digests recorded at persist time,
    ``current`` the digests of the instances about to enter the new graph; an
    entry survives only when both endpoints match — the cross-process
    equivalent of ``JoinGraph._seed_cache_from``'s identity check.
    """
    adopted: dict[tuple[str, str, frozenset], float] = {}
    for left, right, attrs, weight in spec:
        if (
            current.get(left) is not None
            and current.get(left) == fingerprints.get(left)
            and current.get(right) is not None
            and current.get(right) == fingerprints.get(right)
        ):
            adopted[(left, right, frozenset(attrs))] = weight
    return adopted
