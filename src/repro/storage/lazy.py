"""Lazy table materialisation for catalog-backed marketplaces.

A :class:`StoredDataset` stands in for a :class:`MarketplaceDataset` whose
table still lives in the catalog backend.  The schema-level surface the
marketplace's free catalog needs — name, schema, row count, catalog entry —
is answered from the persisted entry without touching the table blob; the
full instance hydrates from storage on first ``.table`` access, and its
cached dictionary encodings are reinstalled from the catalog at the same
moment (rehydrated, not re-encoded).  ``Marketplace.open`` on a
thousand-table catalog therefore costs a handful of metadata reads, and a
request that joins three instances pulls exactly three blobs.
"""

from __future__ import annotations

from repro.exceptions import StorageError
from repro.marketplace.dataset import MarketplaceDataset
from repro.pricing.models import PricingModel
from repro.quality.fd import FunctionalDependency
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table
from repro.storage.base import NS_ENCODINGS, NS_TABLES, CatalogBackend
from repro.storage.serialize import restore_encodings, table_from_blob


class StoredDataset(MarketplaceDataset):
    """A marketplace dataset whose table hydrates lazily from a catalog."""

    def __init__(
        self,
        backend: CatalogBackend,
        name: str,
        entry: dict[str, object],
        *,
        pricing: PricingModel,
        fds: list[FunctionalDependency] | None = None,
        description: str = "",
    ) -> None:
        # Deliberately not calling the dataclass __init__: ``table`` is a
        # hydrating property here, not a field.
        self._backend = backend
        self._name = name
        self._entry = dict(entry)
        self._table: Table | None = None
        self.pricing = pricing
        self.fds = fds
        self.description = description

    # -------------------------------------------------------- schema surface
    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        if self._table is not None:
            return self._table.schema
        types = self._entry.get("attribute_types", {})
        return Schema(
            [
                Attribute(attr, AttributeType(types.get(attr, "categorical")))
                for attr in self._entry.get("attributes", ())
            ]
        )

    @property
    def num_rows(self) -> int:
        if self._table is not None:
            return len(self._table)
        return int(self._entry.get("num_rows", 0))

    def catalog_entry(self) -> dict[str, object]:
        # The persisted entry (including full_price, whose computation would
        # otherwise force hydration plus an entropy pass) is served verbatim.
        return dict(self._entry)

    # ------------------------------------------------------------- hydration
    @property
    def hydrated(self) -> bool:
        """Whether the full table has been loaded from the catalog."""
        return self._table is not None

    @property
    def table(self) -> Table:
        if self._table is None:
            payload = self._backend.get(NS_TABLES, self._name)
            if payload is None:
                raise StorageError(
                    f"catalog holds no table data for dataset {self._name!r}"
                )
            table = table_from_blob(payload)
            encodings = self._backend.get(NS_ENCODINGS, self._name)
            if encodings is not None:
                restore_encodings(table, encodings)
            self._table = table
        return self._table
