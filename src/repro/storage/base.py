"""The abstract catalog backend: a namespaced blob store with JSON metadata.

Every artifact the offline phase produces — instance tables, dictionary
encodings, JI edge weights, Step-1 memos — can be persisted through one small
interface so the marketplace is no longer capped at what one process holds in
RAM.  A :class:`CatalogBackend` is deliberately minimal: namespaced binary
blobs (``put``/``get``/``keys``/``delete``) plus a JSON metadata table
(``put_meta``/``get_meta``) and schema versioning.  Higher layers
(:mod:`repro.storage.serialize`, :meth:`repro.marketplace.market.Marketplace.persist`,
:meth:`repro.core.dance.DANCE.persist`) decide *what* goes into which
namespace; backends only decide *where the bytes live*:

``memory``
    :class:`~repro.storage.memory.InMemoryBackend` — plain dicts, no disk.
    The default: attaching one preserves today's RAM-resident behaviour
    exactly, and it doubles as the reference implementation for parity tests.
``sqlite``
    :class:`~repro.storage.sqlite.SQLiteBackend` — stdlib ``sqlite3``, always
    available, one self-contained catalog file.
``duckdb``
    :class:`~repro.storage.duckdb.DuckDBBackend` — optional; when ``duckdb``
    is not importable the factory falls back to sqlite with a
    ``RuntimeWarning``, mirroring the numpy fallback in
    :mod:`repro.relational.backend`.

All three store byte-identical payloads, so served acquisition results are
bit-identical whichever backend holds the catalog (gated by
``scripts/check_storage_parity.py`` and the round-trip property tests).
"""

from __future__ import annotations

import abc
import json
import time
from pathlib import Path

from repro.exceptions import StorageError

#: Version of the on-disk catalog layout.  Bumped on incompatible changes;
#: :meth:`CatalogBackend.check_schema_version` refuses newer/older catalogs
#: with a typed :class:`~repro.exceptions.StorageError` instead of failing
#: somewhere deep inside deserialization.
SCHEMA_VERSION = 1

MEMORY = "memory"
SQLITE = "sqlite"
DUCKDB = "duckdb"

_KIND_ALIASES = {
    "memory": MEMORY,
    "inmemory": MEMORY,
    "ram": MEMORY,
    "sqlite": SQLITE,
    "sqlite3": SQLITE,
    "duckdb": DUCKDB,
    "": None,
}

# Blob namespaces used by the library layers above the backend.
NS_TABLES = "tables"  # full instance data, one blob per dataset
NS_ENCODINGS = "encodings"  # cached ColumnEncodings + entropy stats per dataset
NS_DATASETS = "datasets"  # catalog entries, pricing, descriptions per dataset
NS_OFFLINE = "offline"  # JI edge weights, discovered FDs, sample fingerprints
NS_SESSION = "session"  # service session caches (JI cache, Step-1 memo)

META_SCHEMA_VERSION = "schema_version"
META_KIND = "kind"
META_CREATED = "created"
META_MARKETPLACE = "marketplace"
META_OFFLINE = "offline"


def normalize_kind(name: str | None) -> str | None:
    """Canonical backend kind for ``name`` (``None`` stays ``None``).

    Raises :class:`~repro.exceptions.StorageError` for unknown kinds; accepted
    aliases mirror :func:`repro.relational.backend.normalize` in spirit
    (``sqlite3``, ``inmemory``, ``ram``, and the empty string).
    """
    if name is None:
        return None
    canonical = _KIND_ALIASES.get(name.strip().lower(), "")
    if canonical == "":
        raise StorageError(
            f"unknown storage backend {name!r}; expected one of "
            f"{sorted(k for k in {MEMORY, SQLITE, DUCKDB})}"
        )
    return canonical


class CatalogBackend(abc.ABC):
    """A namespaced blob store holding one marketplace catalog.

    Subclasses implement the raw byte/metadata operations; this base class
    provides the schema-version bookkeeping and the shared ``describe``
    summary.  Backends are context managers (``close`` is idempotent).
    """

    #: Canonical kind name (``"memory"``/``"sqlite"``/``"duckdb"``).
    kind: str = "abstract"

    def __init__(self, path: str | Path | None = None) -> None:
        self.path: Path | None = None if path is None else Path(path)

    # ------------------------------------------------------------- raw blobs
    @abc.abstractmethod
    def put(self, namespace: str, key: str, payload: bytes) -> None:
        """Store ``payload`` under ``(namespace, key)``, replacing any old value."""

    @abc.abstractmethod
    def get(self, namespace: str, key: str) -> bytes | None:
        """The payload stored under ``(namespace, key)``, or ``None``."""

    @abc.abstractmethod
    def delete(self, namespace: str, key: str) -> None:
        """Remove ``(namespace, key)`` if present (missing keys are fine)."""

    @abc.abstractmethod
    def keys(self, namespace: str) -> list[str]:
        """Sorted keys present in ``namespace``."""

    @abc.abstractmethod
    def namespaces(self) -> list[str]:
        """Sorted namespaces that currently hold at least one blob."""

    # -------------------------------------------------------------- metadata
    @abc.abstractmethod
    def put_meta(self, key: str, value: object) -> None:
        """Store a JSON-serialisable metadata value under ``key``."""

    @abc.abstractmethod
    def get_meta(self, key: str, default: object = None) -> object:
        """The metadata value under ``key``, or ``default``."""

    # -------------------------------------------------------------- lifecycle
    @abc.abstractmethod
    def flush(self) -> None:
        """Make every prior write durable (commit)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Flush and release the backend's resources (idempotent)."""

    def __enter__(self) -> "CatalogBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ versioning
    def initialize(self) -> None:
        """Stamp a fresh catalog: schema version, backend kind, creation time."""
        self.put_meta(META_SCHEMA_VERSION, SCHEMA_VERSION)
        self.put_meta(META_KIND, self.kind)
        # dancelint: disable=DET104 -- provenance stamp: metadata only, never
        # read back into any computation or served result.
        self.put_meta(META_CREATED, time.strftime("%Y-%m-%dT%H:%M:%S"))

    def check_schema_version(self) -> int:
        """Validate the stored schema version, returning it.

        Raises :class:`~repro.exceptions.StorageError` when the catalog was
        never initialised (e.g. an empty or foreign database file) or was
        written by an incompatible layout version.
        """
        version = self.get_meta(META_SCHEMA_VERSION)
        if version is None:
            raise StorageError(
                f"{self._where()} is not a marketplace catalog "
                "(no schema_version metadata)"
            )
        if version != SCHEMA_VERSION:
            raise StorageError(
                f"{self._where()} uses catalog schema version {version!r}; "
                f"this library reads version {SCHEMA_VERSION}"
            )
        return int(version)

    def _where(self) -> str:
        return f"catalog at {self.path}" if self.path else f"in-memory catalog ({self.kind})"

    # -------------------------------------------------------------- summaries
    def describe(self) -> dict[str, object]:
        """A small inspection summary (CLI ``catalog inspect``)."""
        counts = {ns: len(self.keys(ns)) for ns in self.namespaces()}
        return {
            "kind": self.kind,
            "path": None if self.path is None else str(self.path),
            "schema_version": self.get_meta(META_SCHEMA_VERSION),
            "created": self.get_meta(META_CREATED),
            "namespaces": counts,
            "marketplace": self.get_meta(META_MARKETPLACE),
            "offline": self.get_meta(META_OFFLINE),
        }


def meta_dumps(value: object) -> str:
    """Serialise a metadata value to JSON text (stable key order)."""
    try:
        return json.dumps(value, sort_keys=True)
    except (TypeError, ValueError) as error:
        raise StorageError(f"metadata value is not JSON-serialisable: {error}") from error


def meta_loads(text: str) -> object:
    try:
        return json.loads(text)
    except (TypeError, ValueError) as error:
        raise StorageError(f"corrupt catalog metadata: {error}") from error
