"""The sqlite catalog backend: stdlib, always available, one file per catalog.

The layout is two tables — ``catalog_meta`` (JSON text values) and
``catalog_blobs`` (binary payloads keyed by ``(namespace, key)``) — identical
to the duckdb backend's, so payload bytes round-trip bit-identically whichever
engine holds them.  Every sqlite exception is wrapped into a typed
:class:`~repro.exceptions.StorageError` at this boundary; callers never see a
raw ``sqlite3.DatabaseError``.

The connection is shared across threads (``check_same_thread=False``) behind
one lock, with statement execution *and* row fetching inside the critical
section — the acquisition service hydrates tables and restores caches from
request worker threads.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path

from repro.exceptions import StorageError
from repro.storage.base import SQLITE, CatalogBackend, meta_dumps, meta_loads

_CREATE = """
CREATE TABLE IF NOT EXISTS catalog_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS catalog_blobs (
    namespace TEXT NOT NULL,
    key TEXT NOT NULL,
    payload BLOB NOT NULL,
    PRIMARY KEY (namespace, key)
);
"""


class SQLiteBackend(CatalogBackend):
    """A catalog stored in one sqlite database file."""

    kind = SQLITE

    def __init__(self, path: str | Path) -> None:
        super().__init__(path=path)
        self._lock = threading.Lock()
        self._connection: sqlite3.Connection | None = None
        try:
            self._connection = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            self._connection.executescript(_CREATE)
            self._connection.commit()
        except sqlite3.Error as error:
            self._dispose()
            raise StorageError(
                f"cannot open sqlite {self._where()}: {error}"
            ) from error

    # ------------------------------------------------------------------ plumbing
    def _dispose(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None

    def _run(self, sql: str, params: tuple = (), fetch: str | None = None):
        """Execute under the connection lock, fetching inside the critical section."""
        with self._lock:
            if self._connection is None:
                raise StorageError(f"sqlite {self._where()} is closed")
            try:
                cursor = self._connection.execute(sql, params)
                if fetch == "one":
                    return cursor.fetchone()
                if fetch == "all":
                    return cursor.fetchall()
                return None
            except sqlite3.Error as error:
                raise StorageError(
                    f"sqlite {self._where()} failed on {sql.split()[0]}: {error}"
                ) from error

    # ------------------------------------------------------------- raw blobs
    def put(self, namespace: str, key: str, payload: bytes) -> None:
        self._run(
            "INSERT OR REPLACE INTO catalog_blobs (namespace, key, payload) "
            "VALUES (?, ?, ?)",
            (namespace, key, sqlite3.Binary(bytes(payload))),
        )

    def get(self, namespace: str, key: str) -> bytes | None:
        row = self._run(
            "SELECT payload FROM catalog_blobs WHERE namespace = ? AND key = ?",
            (namespace, key),
            fetch="one",
        )
        return None if row is None else bytes(row[0])

    def delete(self, namespace: str, key: str) -> None:
        self._run(
            "DELETE FROM catalog_blobs WHERE namespace = ? AND key = ?",
            (namespace, key),
        )

    def keys(self, namespace: str) -> list[str]:
        rows = self._run(
            "SELECT key FROM catalog_blobs WHERE namespace = ? ORDER BY key",
            (namespace,),
            fetch="all",
        )
        return [row[0] for row in rows]

    def namespaces(self) -> list[str]:
        rows = self._run(
            "SELECT DISTINCT namespace FROM catalog_blobs ORDER BY namespace",
            fetch="all",
        )
        return [row[0] for row in rows]

    # -------------------------------------------------------------- metadata
    def put_meta(self, key: str, value: object) -> None:
        self._run(
            "INSERT OR REPLACE INTO catalog_meta (key, value) VALUES (?, ?)",
            (key, meta_dumps(value)),
        )

    def get_meta(self, key: str, default: object = None) -> object:
        row = self._run(
            "SELECT value FROM catalog_meta WHERE key = ?", (key,), fetch="one"
        )
        return default if row is None else meta_loads(row[0])

    # -------------------------------------------------------------- lifecycle
    def flush(self) -> None:
        with self._lock:
            if self._connection is None:
                raise StorageError(f"sqlite {self._where()} is closed")
            try:
                self._connection.commit()
            except sqlite3.Error as error:
                raise StorageError(
                    f"sqlite {self._where()} failed to commit: {error}"
                ) from error

    def close(self) -> None:
        with self._lock:
            if self._connection is None:
                return
            try:
                self._connection.commit()
            except sqlite3.Error:
                pass
            self._dispose()
