"""The duckdb catalog backend: optional, columnar, graceful-fallback.

duckdb is an *optional* dependency, handled exactly like numpy in
:mod:`repro.relational.backend`: when it is not importable,
:func:`repro.storage.factory.create_backend` falls back to the sqlite backend
with a ``RuntimeWarning`` instead of failing — the library never *requires*
duckdb.  The table layout matches the sqlite backend's (``catalog_meta`` +
``catalog_blobs``), so the payload bytes — and therefore every served
acquisition result — are bit-identical across the two engines.

As with the sqlite backend, one connection is shared across threads behind a
lock (statement execution and row fetching both inside the critical section),
because the acquisition service hydrates tables from request worker threads.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.exceptions import StorageError
from repro.storage.base import DUCKDB, CatalogBackend, meta_dumps, meta_loads

try:  # duckdb is optional; the factory degrades to sqlite without it.
    import duckdb as _DUCKDB  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised via the masked-import tests
    _DUCKDB = None

_CREATE = [
    """
    CREATE TABLE IF NOT EXISTS catalog_meta (
        key VARCHAR PRIMARY KEY,
        value VARCHAR NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS catalog_blobs (
        namespace VARCHAR NOT NULL,
        key VARCHAR NOT NULL,
        payload BLOB NOT NULL,
        PRIMARY KEY (namespace, key)
    )
    """,
]


def duckdb_available() -> bool:
    """Whether duckdb could be imported in this process."""
    return _DUCKDB is not None


def get_duckdb():
    """The duckdb module, or ``None`` when it is not importable."""
    return _DUCKDB


class DuckDBBackend(CatalogBackend):
    """A catalog stored in one duckdb database file."""

    kind = DUCKDB

    def __init__(self, path: str | Path) -> None:
        if _DUCKDB is None:
            raise StorageError(
                "the duckdb backend was requested but duckdb is not importable; "
                "use repro.storage.create_backend for the graceful sqlite fallback"
            )
        super().__init__(path=path)
        self._lock = threading.Lock()
        self._connection = None
        try:
            self._connection = _DUCKDB.connect(str(self.path))
            for statement in _CREATE:
                self._connection.execute(statement)
        except _DUCKDB.Error as error:
            self._dispose()
            raise StorageError(
                f"cannot open duckdb {self._where()}: {error}"
            ) from error

    # ------------------------------------------------------------------ plumbing
    def _dispose(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except _DUCKDB.Error:
                pass
            self._connection = None

    def _run(self, statements, fetch: str | None = None):
        """Execute ``(sql, params)`` pairs under the lock; fetch from the last."""
        with self._lock:
            if self._connection is None:
                raise StorageError(f"duckdb {self._where()} is closed")
            try:
                cursor = None
                for sql, params in statements:
                    cursor = self._connection.execute(sql, params)
                if fetch == "one":
                    return cursor.fetchone()
                if fetch == "all":
                    return cursor.fetchall()
                return None
            except _DUCKDB.Error as error:
                raise StorageError(
                    f"duckdb {self._where()} failed: {error}"
                ) from error

    # ------------------------------------------------------------- raw blobs
    def put(self, namespace: str, key: str, payload: bytes) -> None:
        # delete-then-insert keeps the statement portable across duckdb
        # versions (ON CONFLICT support varies); both run under one lock hold.
        self._run(
            [
                (
                    "DELETE FROM catalog_blobs WHERE namespace = ? AND key = ?",
                    (namespace, key),
                ),
                (
                    "INSERT INTO catalog_blobs (namespace, key, payload) "
                    "VALUES (?, ?, ?)",
                    (namespace, key, bytes(payload)),
                ),
            ]
        )

    def get(self, namespace: str, key: str) -> bytes | None:
        row = self._run(
            [
                (
                    "SELECT payload FROM catalog_blobs "
                    "WHERE namespace = ? AND key = ?",
                    (namespace, key),
                )
            ],
            fetch="one",
        )
        return None if row is None else bytes(row[0])

    def delete(self, namespace: str, key: str) -> None:
        self._run(
            [
                (
                    "DELETE FROM catalog_blobs WHERE namespace = ? AND key = ?",
                    (namespace, key),
                )
            ]
        )

    def keys(self, namespace: str) -> list[str]:
        rows = self._run(
            [
                (
                    "SELECT key FROM catalog_blobs WHERE namespace = ? "
                    "ORDER BY key",
                    (namespace,),
                )
            ],
            fetch="all",
        )
        return [row[0] for row in rows]

    def namespaces(self) -> list[str]:
        rows = self._run(
            [("SELECT DISTINCT namespace FROM catalog_blobs ORDER BY namespace", ())],
            fetch="all",
        )
        return [row[0] for row in rows]

    # -------------------------------------------------------------- metadata
    def put_meta(self, key: str, value: object) -> None:
        self._run(
            [
                ("DELETE FROM catalog_meta WHERE key = ?", (key,)),
                (
                    "INSERT INTO catalog_meta (key, value) VALUES (?, ?)",
                    (key, meta_dumps(value)),
                ),
            ]
        )

    def get_meta(self, key: str, default: object = None) -> object:
        row = self._run(
            [("SELECT value FROM catalog_meta WHERE key = ?", (key,))], fetch="one"
        )
        return default if row is None else meta_loads(row[0])

    # -------------------------------------------------------------- lifecycle
    def flush(self) -> None:
        # duckdb autocommits single statements; CHECKPOINT forces the WAL
        # into the database file so the on-disk catalog is self-contained.
        self._run([("CHECKPOINT", ())])

    def close(self) -> None:
        with self._lock:
            if self._connection is None:
                return
            try:
                self._connection.execute("CHECKPOINT")
            except _DUCKDB.Error:
                pass
            self._dispose()
