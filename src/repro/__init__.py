"""DANCE: cost-efficient data acquisition on online data marketplaces for correlation analysis.

This library is a from-scratch reproduction of the system described in
"Cost-efficient Data Acquisition on Online Data Marketplaces for Correlation
Analysis" (Li, Sun, Dong, Wang; VLDB 2018).  It provides:

* a small relational substrate (:mod:`repro.relational`),
* FD-based data-quality measurement and dirty-data injection (:mod:`repro.quality`),
* entropy-based correlation and join informativeness (:mod:`repro.infotheory`),
* correlated sampling / re-sampling estimators (:mod:`repro.sampling`),
* arbitrage-free query-based pricing (:mod:`repro.pricing`),
* an in-process data marketplace (:mod:`repro.marketplace`),
* the two-layer join graph (:mod:`repro.graph`),
* the two-step heuristic search plus the LP/GP baselines (:mod:`repro.search`),
* the DANCE middleware facade (:mod:`repro.core`),
* TPC-H-like / TPC-E-like synthetic workloads (:mod:`repro.workloads`), and
* drivers regenerating every table and figure of the evaluation
  (:mod:`repro.experiments`).

Quickstart::

    from repro import DANCE, Marketplace, AcquisitionRequest
    from repro.workloads import tpch_workload

    workload = tpch_workload(scale=0.1)
    market = Marketplace(workload.all_tables())
    dance = DANCE(market)
    dance.build_offline()
    request = AcquisitionRequest(
        source_attributes=["totalprice"],
        target_attributes=["rname"],
        budget=100.0,
    )
    result = dance.acquire(request)
    print(result.sql())
"""

from repro.core.config import DanceConfig
from repro.core.dance import DANCE, build_dance
from repro.core.result import AcquisitionResult
from repro.exceptions import (
    BudgetExceededError,
    InfeasibleAcquisitionError,
    MarketplaceError,
    ReproError,
)
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace, ProjectionQuery
from repro.marketplace.shopper import AcquisitionRequest, DataShopper
from repro.quality.fd import FunctionalDependency
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table

__version__ = "1.0.0"

__all__ = [
    "DANCE",
    "build_dance",
    "DanceConfig",
    "AcquisitionResult",
    "AcquisitionRequest",
    "DataShopper",
    "Marketplace",
    "MarketplaceDataset",
    "ProjectionQuery",
    "FunctionalDependency",
    "Table",
    "Schema",
    "Attribute",
    "AttributeType",
    "ReproError",
    "MarketplaceError",
    "BudgetExceededError",
    "InfeasibleAcquisitionError",
    "__version__",
]
