"""DANCE: cost-efficient data acquisition on online data marketplaces for correlation analysis.

This library is a from-scratch reproduction of the system described in
"Cost-efficient Data Acquisition on Online Data Marketplaces for Correlation
Analysis" (Li, Sun, Dong, Wang; VLDB 2018).  It provides:

* a small relational substrate (:mod:`repro.relational`),
* FD-based data-quality measurement and dirty-data injection (:mod:`repro.quality`),
* entropy-based correlation and join informativeness (:mod:`repro.infotheory`),
* correlated sampling / re-sampling estimators (:mod:`repro.sampling`),
* arbitrage-free query-based pricing (:mod:`repro.pricing`),
* an in-process data marketplace (:mod:`repro.marketplace`),
* the two-layer join graph (:mod:`repro.graph`),
* the two-step heuristic search plus the LP/GP baselines (:mod:`repro.search`),
* the DANCE middleware facade (:mod:`repro.core`),
* TPC-H-like / TPC-E-like synthetic workloads (:mod:`repro.workloads`), and
* drivers regenerating every table and figure of the evaluation
  (:mod:`repro.experiments`).

Quickstart::

    from repro import DANCE, Marketplace, AcquisitionRequest
    from repro.workloads import tpch_workload

    workload = tpch_workload(scale=0.1)
    market = Marketplace(workload.all_tables())
    dance = DANCE(market)
    dance.build_offline()
    request = AcquisitionRequest(
        source_attributes=["totalprice"],
        target_attributes=["rname"],
        budget=100.0,
    )
    result = dance.acquire(request)
    print(result.sql())

A fuller quickstart lives in ``README.md``; the layer map and hot-path design
are documented in ``docs/ARCHITECTURE.md``.

Performance architecture
------------------------

The online search is dominated by repeated joins and entropies over the same
sample tables, so the hot path is layered over three caches and two
interchangeable columnar backends:

* **Dictionary encoding** — :class:`~repro.relational.table.Table` lazily
  encodes each column (and each multi-column key) into integer codes with a
  code→value dictionary, cached on the table.  Joins match per distinct key
  code and gather result *columns* from index vectors (no row tuples), and all
  entropy kernels reduce integer-code histograms instead of hashing raw
  values row by row (:mod:`repro.infotheory.entropy`).
* **Histogram-based join informativeness** — JI over the full outer join is a
  pure function of the two join-key histograms, so
  :func:`~repro.infotheory.join_informativeness.join_informativeness` never
  materialises the outer join; per-edge JI weights are additionally cached on
  the :class:`~repro.graph.join_graph.JoinGraph` and shared across candidate
  evaluations through ``ji_cache``.
* **MCMC evaluation memoisation** — the Metropolis walk revisits candidate
  target graphs constantly, so :func:`~repro.search.mcmc.mcmc_search`
  memoises :meth:`~repro.graph.target.TargetGraph.evaluate` results by a
  canonical graph signature and reports the hit rate in
  :class:`~repro.search.mcmc.MCMCResult`.
* **Numpy backend (optional)** — when numpy is importable the columnar
  kernels store codes as ``int64`` arrays, histograms become ``np.bincount``,
  joint counts reduce via ``np.unique``, and join gathers fancy-index cached
  object arrays (:mod:`repro.relational.backend`; select with
  ``REPRO_BACKEND``, :func:`repro.relational.set_backend`, or
  ``DanceConfig(backend=...)``).  Both backends are bit-identical; the
  pure-python kernels remain the no-dependency fallback.

``scripts/bench_hot_path.py`` tracks the resulting wall-clock numbers (for
both backends) in ``BENCH_hotpath.json`` PR over PR.
"""

from repro.core.config import DanceConfig
from repro.core.dance import DANCE, build_dance
from repro.core.result import AcquisitionResult
from repro.exceptions import (
    BudgetExceededError,
    InfeasibleAcquisitionError,
    MarketplaceError,
    ReproError,
)
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace, ProjectionQuery
from repro.marketplace.shopper import AcquisitionRequest, DataShopper
from repro.quality.fd import FunctionalDependency
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table
from repro.service import AcquisitionService, BatchResult, ServedRequest, request_seed

__version__ = "1.0.0"

__all__ = [
    "DANCE",
    "build_dance",
    "DanceConfig",
    "AcquisitionService",
    "BatchResult",
    "ServedRequest",
    "request_seed",
    "AcquisitionResult",
    "AcquisitionRequest",
    "DataShopper",
    "Marketplace",
    "MarketplaceDataset",
    "ProjectionQuery",
    "FunctionalDependency",
    "Table",
    "Schema",
    "Attribute",
    "AttributeType",
    "ReproError",
    "MarketplaceError",
    "BudgetExceededError",
    "InfeasibleAcquisitionError",
    "__version__",
]
