"""Budget bookkeeping and the paper's budget-ratio parameterisation.

The experiments express the shopper's budget as ``r × UB`` where ``UB`` is the
maximum price over all candidate acquisition options (join paths between the
source and target vertices) and ``r ∈ (0, 1]`` is the *budget ratio*; the
minimum such price ``LB`` is the cheapest feasible option, and the experiments
require ``r × UB >= LB`` so that at least one option is affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import BudgetExceededError, PricingError


def price_bounds(option_prices: Iterable[float]) -> tuple[float, float]:
    """(LB, UB): cheapest and most expensive candidate-option price."""
    prices = list(option_prices)
    if not prices:
        raise PricingError("price_bounds requires at least one candidate option price")
    if any(price < 0 for price in prices):
        raise PricingError("option prices must be non-negative")
    return min(prices), max(prices)


def budget_from_ratio(option_prices: Sequence[float], ratio: float) -> "Budget":
    """The shopper budget ``ratio × UB`` for the given candidate option prices.

    Raises :class:`PricingError` when the ratio is outside ``(0, 1]``.  The
    returned budget may be below ``LB`` — exactly the "N/A: not affordable"
    cases of Figure 5(c) — callers decide how to handle infeasibility.
    """
    if not 0.0 < ratio <= 1.0:
        raise PricingError(f"budget ratio must be in (0, 1], got {ratio}")
    _, upper = price_bounds(option_prices)
    return Budget(total=ratio * upper)


@dataclass
class Budget:
    """A mutable budget with spend tracking.

    Attributes
    ----------
    total:
        The total amount the shopper can spend.
    spent:
        The amount spent so far (starts at 0).
    """

    total: float
    spent: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.total < 0:
            raise PricingError(f"budget total must be non-negative, got {self.total}")
        if self.spent < 0:
            raise PricingError(f"budget spent must be non-negative, got {self.spent}")

    @property
    def remaining(self) -> float:
        return max(0.0, self.total - self.spent)

    def can_afford(self, price: float) -> bool:
        """True when ``price`` fits in the remaining budget (with a tiny tolerance)."""
        return price <= self.remaining + 1e-9

    def charge(self, price: float) -> float:
        """Record a purchase of ``price``; raises :class:`BudgetExceededError` if unaffordable."""
        if price < 0:
            raise PricingError(f"cannot charge a negative price: {price}")
        if not self.can_afford(price):
            raise BudgetExceededError(price, self.remaining)
        self.spent += price
        return self.remaining

    def copy(self) -> "Budget":
        return Budget(total=self.total, spent=self.spent)
