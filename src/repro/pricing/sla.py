"""Priced SLA tiers: service levels as first-class marketplace products.

The marketplace already prices *data* (query-based entropy pricing,
:mod:`repro.pricing.models`); this module prices *service*.  An
:class:`SlaTier` bundles the scheduling parameters the QoS layer consumes —
WFQ weight, token-bucket rate and burst (:mod:`repro.service.qos`) — with a
price multiplier applied to every data purchase the subscribed shopper makes,
so better service is bought, not configured ad hoc.

:class:`TieredPricingModel` plugs the multiplier into the existing
:class:`~repro.pricing.models.PricingModel` machinery.  A non-negative
multiplier preserves monotonicity and subadditivity of the wrapped model, so
tiered prices stay arbitrage-free whenever the base prices are
(``tests/pricing/test_sla.py`` checks this through
:func:`repro.pricing.arbitrage.verify_arbitrage_free`).

:class:`~repro.marketplace.shopper.DataShopper.subscribe` attaches a tier to
a shopper: its requests are stamped with the tier name (the scheduler reads
the weight/rate/burst from its own tier table — the request carries only the
name, never the parameters, so a shopper cannot self-assign a weight), and
its purchases are charged at the tier's multiplier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import PricingError
from repro.pricing.models import PricingModel
from repro.relational.table import Table


@dataclass(frozen=True)
class SlaTier:
    """One purchasable service level.

    Attributes
    ----------
    name:
        The tier's identity; requests are stamped with it
        (``AcquisitionRequest(tier=...)``).
    weight:
        WFQ weight of the tier's shoppers — a weight-4 shopper receives 4x
        the scheduling share of a weight-1 shopper under contention.
    rate:
        Token-bucket refill rate in requests/second.  ``None`` (or ``inf``)
        disables rate limiting for the tier.
    burst:
        Token-bucket capacity — the largest back-to-back burst the tier
        admits before :class:`~repro.exceptions.RateLimitedError`.
    price_multiplier:
        Factor applied to every data purchase of a subscribed shopper
        (:class:`TieredPricingModel`); the premium that pays for the weight.
    """

    name: str
    weight: float = 1.0
    rate: float | None = None
    burst: int = 8
    price_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise PricingError("an SLA tier needs a non-empty name")
        if not self.weight > 0 or not math.isfinite(self.weight):
            raise PricingError(f"tier weight must be finite and > 0, got {self.weight}")
        if self.rate is not None and self.rate < 0:
            raise PricingError(f"tier rate must be >= 0 or None, got {self.rate}")
        if self.burst < 1:
            raise PricingError(f"tier burst must be >= 1, got {self.burst}")
        if self.price_multiplier < 0:
            raise PricingError(
                f"tier price_multiplier must be >= 0, got {self.price_multiplier}"
            )

    def charge(self, base_price: float) -> float:
        """The tiered price of a purchase priced ``base_price`` untiered."""
        return base_price * self.price_multiplier


#: The default tier ladder.  Bronze is the implicit tier of anonymous and
#: unsubscribed traffic: weight 1, generous-but-bounded bucket, no premium.
DEFAULT_TIERS: Mapping[str, SlaTier] = {
    "bronze": SlaTier("bronze", weight=1.0, rate=None, burst=8, price_multiplier=1.0),
    "silver": SlaTier("silver", weight=2.0, rate=None, burst=16, price_multiplier=1.5),
    "gold": SlaTier("gold", weight=4.0, rate=None, burst=32, price_multiplier=2.5),
}

#: Tier of requests that name no tier at all.
DEFAULT_TIER_NAME = "bronze"


def resolve_tier(
    tier: SlaTier | str | None,
    tiers: Mapping[str, SlaTier] | None = None,
    *,
    default: str = DEFAULT_TIER_NAME,
) -> SlaTier:
    """The :class:`SlaTier` behind a tier spelling (object, name, or ``None``).

    ``None`` resolves to ``default``; unknown names raise
    :class:`~repro.exceptions.PricingError` listing the known tiers.
    """
    table = DEFAULT_TIERS if tiers is None else tiers
    if isinstance(tier, SlaTier):
        return tier
    name = default if tier is None else tier
    resolved = table.get(name)
    if resolved is None:
        raise PricingError(
            f"unknown SLA tier {name!r} (expected one of {sorted(table)})"
        )
    return resolved


class TieredPricingModel(PricingModel):
    """A base pricing model scaled by an SLA tier's price multiplier.

    Multiplying by a non-negative constant preserves monotonicity and
    subadditivity over attribute sets, so the tiered model is arbitrage-free
    whenever the base model is.
    """

    def __init__(self, base: PricingModel, tier: SlaTier) -> None:
        self.base = base
        self.tier = tier

    def price(self, table: Table, attributes: Sequence[str]) -> float:
        return self.tier.charge(self.base.price(table, attributes))
