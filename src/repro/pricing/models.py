"""Pricing models for attribute-set purchases (query-based pricing).

Every model prices a *projection query* ``pi_A(D)``: the purchase of attribute
set ``A`` from marketplace instance ``D``.  The experiments use the
entropy-based model, under which the price of an attribute set grows with the
information content (Shannon entropy) of its joint value distribution; this is
a natural instantiation of Koutris-style query pricing that is monotone and
subadditive, hence arbitrage-free (Deep & Koutris 2017).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.exceptions import PricingError
from repro.relational.table import Table


class PricingModel(ABC):
    """Interface of a query-based pricing function over attribute sets."""

    @abstractmethod
    def price(self, table: Table, attributes: Sequence[str]) -> float:
        """Price of purchasing ``pi_attributes(table)`` from the marketplace."""

    def price_full(self, table: Table) -> float:
        """Price of purchasing the whole instance."""
        return self.price(table, table.schema.names)

    def _validate(self, table: Table, attributes: Sequence[str]) -> tuple[str, ...]:
        validated = table.schema.validate_subset(attributes)
        if not validated:
            raise PricingError("cannot price an empty attribute set")
        return validated


class EntropyPricingModel(PricingModel):
    """Entropy-based pricing: ``price = base + unit * H(A) * log10(rows + 1)``.

    ``H(A)`` is the Shannon entropy of the joint distribution of the purchased
    attribute set, so buying informative attributes costs more, and buying the
    same information through two disjoint queries never costs less than buying
    it at once (subadditivity holds because joint entropy is subadditive).
    The ``log10(rows + 1)`` factor scales prices with the instance size without
    making a 10x bigger instance 10x more expensive, mirroring how marketplaces
    price datasets rather than cells.
    """

    def __init__(self, unit_price: float = 1.0, base_price: float = 0.5) -> None:
        if unit_price < 0 or base_price < 0:
            raise PricingError("unit_price and base_price must be non-negative")
        self.unit_price = unit_price
        self.base_price = base_price

    def price(self, table: Table, attributes: Sequence[str]) -> float:
        validated = self._validate(table, attributes)
        if len(table) == 0:
            return self.base_price
        import math

        # key_entropy equals shannon_entropy over the key tuples but is
        # histogram-based and cached per (table, attribute-set) — the search
        # loop prices the same projections over and over.
        entropy = table.key_entropy(validated)
        size_factor = math.log10(len(table) + 1)
        return self.base_price + self.unit_price * entropy * size_factor


class FlatAttributePricingModel(PricingModel):
    """A flat price per purchased attribute (simple, trivially arbitrage-free)."""

    def __init__(self, price_per_attribute: float = 1.0) -> None:
        if price_per_attribute < 0:
            raise PricingError("price_per_attribute must be non-negative")
        self.price_per_attribute = price_per_attribute

    def price(self, table: Table, attributes: Sequence[str]) -> float:
        validated = self._validate(table, attributes)
        return self.price_per_attribute * len(validated)


class PerCellPricingModel(PricingModel):
    """Price proportional to the number of purchased cells (rows × attributes)."""

    def __init__(self, price_per_cell: float = 0.001) -> None:
        if price_per_cell < 0:
            raise PricingError("price_per_cell must be non-negative")
        self.price_per_cell = price_per_cell

    def price(self, table: Table, attributes: Sequence[str]) -> float:
        validated = self._validate(table, attributes)
        return self.price_per_cell * len(table) * len(validated)
