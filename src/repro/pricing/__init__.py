"""Query-based data pricing for the marketplace.

The paper follows the query-based pricing model of Balazinska/Koutris et al.:
the shopper pays for the result of SQL projection queries rather than for
whole datasets, and prices are assigned by an entropy-based pricing function
(Section 6.1 uses the entropy-based model of Koutris et al. [16]).

``models``
    Pricing functions: entropy-based, per-cell, and flat per-attribute pricing,
    all exposed behind the :class:`PricingModel` interface and all defined over
    attribute *sets* of an instance (i.e. AS-lattice vertices).
``arbitrage``
    Checks that a pricing assignment is arbitrage-free (monotone and
    subadditive over attribute sets).
``budget``
    Budget bookkeeping: lower/upper bounds over candidate target graphs and the
    paper's "budget ratio" parameterisation.
``sla``
    Priced service levels: :class:`SlaTier` (WFQ weight, token-bucket rate and
    burst, price multiplier) and :class:`TieredPricingModel`, which scales any
    base model by a tier's multiplier while staying arbitrage-free.
"""

from repro.pricing.models import (
    EntropyPricingModel,
    FlatAttributePricingModel,
    PerCellPricingModel,
    PricingModel,
)
from repro.pricing.arbitrage import is_monotone, is_subadditive, verify_arbitrage_free
from repro.pricing.budget import Budget, budget_from_ratio, price_bounds
from repro.pricing.sla import (
    DEFAULT_TIER_NAME,
    DEFAULT_TIERS,
    SlaTier,
    TieredPricingModel,
    resolve_tier,
)

__all__ = [
    "PricingModel",
    "EntropyPricingModel",
    "FlatAttributePricingModel",
    "PerCellPricingModel",
    "is_monotone",
    "is_subadditive",
    "verify_arbitrage_free",
    "Budget",
    "budget_from_ratio",
    "price_bounds",
    "SlaTier",
    "TieredPricingModel",
    "resolve_tier",
    "DEFAULT_TIERS",
    "DEFAULT_TIER_NAME",
]
