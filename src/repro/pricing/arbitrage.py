"""Arbitrage-freeness checks for pricing models.

A query-based pricing function is arbitrage-free when a shopper can never get
the data of a query more cheaply by buying other queries and combining them.
Two sufficient structural properties on attribute-set prices are checked here:

* **monotonicity** — a superset of attributes never costs less than a subset;
* **subadditivity** — the price of a union never exceeds the sum of the prices
  of its parts.

These correspond to the sufficient conditions identified by Lin & Kifer and
Deep & Koutris for instance-dependent pricing functions.  The checks are
exhaustive over the attribute-set lattice, so they are meant for the small /
sampled instances DANCE works with rather than for million-row tables.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.pricing.models import PricingModel
from repro.relational.table import Table


def _attribute_subsets(
    names: Sequence[str], max_size: int | None = None
) -> list[tuple[str, ...]]:
    limit = len(names) if max_size is None else min(max_size, len(names))
    subsets: list[tuple[str, ...]] = []
    for size in range(1, limit + 1):
        subsets.extend(combinations(names, size))
    return subsets


def is_monotone(
    model: PricingModel,
    table: Table,
    *,
    max_subset_size: int | None = None,
    tolerance: float = 1e-9,
) -> bool:
    """True when ``A ⊆ B`` implies ``price(A) <= price(B) + tolerance``."""
    names = table.schema.names
    subsets = _attribute_subsets(names, max_subset_size)
    prices = {subset: model.price(table, subset) for subset in subsets}
    for smaller in subsets:
        smaller_set = set(smaller)
        for larger in subsets:
            if smaller_set < set(larger) and prices[smaller] > prices[larger] + tolerance:
                return False
    return True


def is_subadditive(
    model: PricingModel,
    table: Table,
    *,
    max_subset_size: int | None = None,
    tolerance: float = 1e-9,
) -> bool:
    """True when ``price(A ∪ B) <= price(A) + price(B) + tolerance`` for all A, B."""
    names = table.schema.names
    subsets = _attribute_subsets(names, max_subset_size)
    prices = {subset: model.price(table, subset) for subset in subsets}
    subset_index = {frozenset(subset): subset for subset in subsets}
    for a in subsets:
        for b in subsets:
            union = frozenset(a) | frozenset(b)
            union_subset = subset_index.get(union)
            if union_subset is None:
                continue
            if prices[union_subset] > prices[a] + prices[b] + tolerance:
                return False
    return True


def verify_arbitrage_free(
    model: PricingModel,
    tables: Iterable[Table],
    *,
    max_subset_size: int | None = 4,
) -> dict[str, bool]:
    """Check monotonicity and subadditivity of ``model`` on every table.

    Returns a mapping from table name to a boolean (arbitrage-free on that
    table under both structural checks).  ``max_subset_size`` bounds the lattice
    exploration for wide tables.
    """
    results: dict[str, bool] = {}
    for table in tables:
        monotone = is_monotone(model, table, max_subset_size=max_subset_size)
        subadditive = is_subadditive(model, table, max_subset_size=max_subset_size)
        results[table.name] = monotone and subadditive
    return results
