"""Classical correlation comparators: Pearson's r and Cramér's V.

The paper motivates the entropy-based correlation measure by noting that
Pearson's coefficient only handles numerical data and association measures like
Cramér's V only handle categorical data.  These implementations are provided so
that examples and tests can contrast the entropy-based measure with the
classical ones on the same data.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Sequence

from repro.exceptions import MeasureError


def pearson_correlation(x: Sequence[object], y: Sequence[object]) -> float:
    """Pearson's r for two aligned numeric sequences (``None`` pairs are dropped).

    Implemented without numpy so the comparators stay importable when the
    optional numpy backend dependency is absent.
    """
    pairs = [
        (float(a), float(b))
        for a, b in zip(x, y)
        if a is not None and b is not None
        and isinstance(a, (int, float)) and isinstance(b, (int, float))
        and not isinstance(a, bool) and not isinstance(b, bool)
    ]
    if len(pairs) < 2:
        return 0.0
    n = len(pairs)
    mean_x = sum(a for a, _ in pairs) / n
    mean_y = sum(b for _, b in pairs) / n
    var_x = sum((a - mean_x) ** 2 for a, _ in pairs)
    var_y = sum((b - mean_y) ** 2 for _, b in pairs)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    covariance = sum((a - mean_x) * (b - mean_y) for a, b in pairs)
    # Clamp: float rounding can push perfectly-correlated data past ±1.
    return max(-1.0, min(1.0, covariance / math.sqrt(var_x * var_y)))


def cramers_v(x: Sequence[Hashable], y: Sequence[Hashable]) -> float:
    """Cramér's V association for two aligned categorical sequences, in [0, 1]."""
    if len(x) != len(y):
        raise MeasureError("cramers_v requires aligned sequences")
    n = len(x)
    if n == 0:
        return 0.0
    x_levels = sorted(set(x), key=repr)
    y_levels = sorted(set(y), key=repr)
    if len(x_levels) < 2 or len(y_levels) < 2:
        return 0.0
    joint = Counter(zip(x, y))
    x_counts = Counter(x)
    y_counts = Counter(y)

    chi2 = 0.0
    for x_level in x_levels:
        for y_level in y_levels:
            observed = joint.get((x_level, y_level), 0)
            expected = x_counts[x_level] * y_counts[y_level] / n
            if expected > 0:
                chi2 += (observed - expected) ** 2 / expected
    denominator = n * (min(len(x_levels), len(y_levels)) - 1)
    if denominator <= 0:
        return 0.0
    return math.sqrt(chi2 / denominator)
