"""Cumulative entropy for numerical attributes.

The paper follows Nguyen et al. (SSDBM 2014) and measures the "entropy" of a
numerical attribute ``X`` with the *cumulative entropy*

    h(X) = - integral P(X <= x) log P(X <= x) dx,

estimated from the empirical CDF of the observed values.  The conditional
cumulative entropy ``h(X | Y)`` averages ``h(X | y)`` over the conditioning
groups (``Y`` is treated as categorical / discretised).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Hashable, Sequence

from repro.exceptions import MeasureError


def _clean_numeric(values: Sequence[object]) -> list[float]:
    cleaned: list[float] = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            cleaned.append(float(value))
        elif isinstance(value, (int, float)):
            cleaned.append(float(value))
        else:
            raise MeasureError(f"cumulative entropy requires numeric values, got {value!r}")
    return cleaned


def cumulative_entropy(values: Sequence[object]) -> float:
    """Empirical cumulative entropy of a numerical sample.

    Uses the standard estimator over the order statistics ``x_(1) <= ... <= x_(n)``:

        h(X) ≈ - Σ_{i=1}^{n-1} (x_(i+1) - x_(i)) * (i/n) * log(i/n)

    The result is non-negative, 0 for constant (or empty) samples, and grows
    with the spread of the distribution.
    """
    cleaned = sorted(_clean_numeric(values))
    n = len(cleaned)
    if n < 2:
        return 0.0
    total = 0.0
    for i in range(1, n):
        gap = cleaned[i] - cleaned[i - 1]
        if gap <= 0.0:
            continue
        p = i / n
        total -= gap * p * math.log(p)
    return total


def conditional_cumulative_entropy(
    x: Sequence[object], y: Sequence[Hashable]
) -> float:
    """Conditional cumulative entropy ``h(X | Y) = Σ_y p(y) h(X | Y=y)``.

    ``X`` must be numeric; ``Y`` is grouped on exact values (categorical or
    already-discretised numeric values).  Rows where ``X`` is ``None`` are
    dropped from their group.
    """
    if len(x) != len(y):
        raise MeasureError("conditional_cumulative_entropy requires aligned sequences")
    groups: dict[Hashable, list[object]] = defaultdict(list)
    for x_value, y_value in zip(x, y):
        groups[y_value].append(x_value)
    total_rows = len(x)
    if total_rows == 0:
        return 0.0
    result = 0.0
    for group_values in groups.values():
        weight = len(group_values) / total_rows
        result += weight * cumulative_entropy(group_values)
    return result


def cumulative_mutual_information(x: Sequence[object], y: Sequence[Hashable]) -> float:
    """``h(X) - h(X | Y)``: how much knowing ``Y`` shrinks the spread of ``X`` (>= 0 up to noise)."""
    return cumulative_entropy(x) - conditional_cumulative_entropy(x, y)
