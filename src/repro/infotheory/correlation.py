"""Mixed-type correlation measure (Definition 2.5 of the paper).

``CORR(X, Y)`` quantifies how much the attribute set ``Y`` reduces the
uncertainty of the attribute set ``X``:

* if ``X`` is categorical:  ``CORR(X, Y) = H(X) - H(X | Y)``  (Shannon entropy);
* if ``X`` is numerical:    ``CORR(X, Y) = h(X) - h(X | Y)``  (cumulative entropy).

When ``X`` contains several attributes the paper treats them jointly; for a
mixed attribute set we sum the per-attribute contributions (each attribute of
``X`` conditioned on the full ``Y``), which degrades gracefully to the paper's
definition when ``X`` is homogeneous and single-attribute.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import MeasureError
from repro.infotheory.cumulative import conditional_cumulative_entropy, cumulative_entropy
from repro.infotheory.entropy import (
    conditional_entropy,
    entropy_of_counts,
    joint_entropy_of_codes,
    shannon_entropy,
)
from repro.relational.schema import AttributeType
from repro.relational.table import Table


def correlation(
    x_values: Sequence[object],
    y_values: Sequence[object],
    *,
    x_type: AttributeType = AttributeType.CATEGORICAL,
) -> float:
    """``CORR(X, Y)`` for one ``X`` column and one (possibly tuple-valued) ``Y`` column."""
    if len(x_values) != len(y_values):
        raise MeasureError("correlation requires aligned sequences")
    if x_type is AttributeType.NUMERICAL:
        return cumulative_entropy(x_values) - conditional_cumulative_entropy(
            x_values, y_values
        )
    return shannon_entropy(x_values) - conditional_entropy(x_values, y_values)


def attribute_set_correlation(
    table: Table, source_attributes: Sequence[str], target_attributes: Sequence[str]
) -> float:
    """``CORR(A_S, A_T)`` measured on ``table`` (typically a join result).

    Each source attribute contributes the reduction of its own (Shannon or
    cumulative) entropy given the *joint* value of the target attributes; the
    contributions are summed.  Attributes missing from the table (e.g. pruned
    by a projection) are skipped, and an empty overlap yields 0.0.
    """
    present_sources = [a for a in source_attributes if a in table.schema]
    present_targets = [a for a in target_attributes if a in table.schema]
    if not present_sources or not present_targets or len(table) == 0:
        return 0.0

    # Operate on dictionary-encoded code columns: the target key is encoded
    # once (cached on the table) and each source contribution reduces to small
    # integer-histogram entropies instead of hashing value tuples per row.
    y_encoding = table.encoded_key(present_targets)
    h_y = entropy_of_counts(y_encoding.counts())
    total = 0.0
    y_code_groups: list | None = None
    for attribute in present_sources:
        x_type = table.schema.type_of(attribute)
        if x_type is AttributeType.NUMERICAL:
            if y_code_groups is None:
                # The cumulative-entropy estimator groups rows by target code
                # in python; plain int codes group faster than boxed array
                # scalars, and the result is identical under both backends.
                y_code_groups = y_encoding.code_list()
            x_values = table.column(attribute)
            total += cumulative_entropy(x_values) - conditional_cumulative_entropy(
                x_values, y_code_groups
            )
        else:
            x_encoding = table.encoded(attribute)
            h_x = entropy_of_counts(x_encoding.counts())
            h_xy = joint_entropy_of_codes(
                x_encoding.codes, y_encoding.codes, y_encoding.num_codes
            )
            total += h_x - (h_xy - h_y)
    return total


def symmetric_correlation(
    table: Table, left_attributes: Sequence[str], right_attributes: Sequence[str]
) -> float:
    """Average of ``CORR(left, right)`` and ``CORR(right, left)`` (used in examples)."""
    forward = attribute_set_correlation(table, left_attributes, right_attributes)
    backward = attribute_set_correlation(table, right_attributes, left_attributes)
    return (forward + backward) / 2.0
