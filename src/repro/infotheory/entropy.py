"""Shannon entropy, conditional entropy and mutual information.

All functions operate either on raw value sequences (hashable values, ``None``
allowed and treated as a regular symbol), directly on count histograms, or —
for the hot-path kernels — on dictionary-encoded integer code columns (see
:class:`repro.relational.table.ColumnEncoding`).  The code-based kernels avoid
hashing arbitrary values row by row: a joint histogram of two code columns is
built over small dense integers, which is what makes the MCMC evaluation loop
cheap.  Entropies are measured in bits (log base 2); the choice of base cancels
in the correlation and join-informativeness ratios, but bits make the unit
tests easy to reason about.

The code-based kernels accept either container of the columnar backend
(:mod:`repro.relational.backend`): plain lists or ``int64`` numpy arrays.
Array inputs take vectorised paths (``np.bincount`` histograms, ``np.unique``
joint-count reduction over a combined integer key), but every floating-point
accumulation still consumes the same count values in the same
(first-occurrence) order as the list path, so the two backends return
bit-identical entropies.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Iterable, Mapping, Sequence

from repro.exceptions import MeasureError
from repro.relational import backend as _backend


def entropy_of_counts(counts: Iterable[int]) -> float:
    """Shannon entropy (bits) of a histogram of non-negative counts."""
    if _backend.is_array(counts):
        # Keep the order and convert to python ints: the sequential reduction
        # below is then bit-identical to the pure-python backend.
        counts = counts[counts > 0].tolist()
    else:
        counts = [count for count in counts if count > 0]
    total = sum(counts)
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def shannon_entropy(values: Sequence[Hashable]) -> float:
    """Shannon entropy (bits) of the empirical distribution of ``values``."""
    return entropy_of_counts(Counter(values).values())


def joint_entropy(*value_sequences: Sequence[Hashable]) -> float:
    """Entropy of the joint empirical distribution of several aligned sequences."""
    if not value_sequences:
        return 0.0
    length = len(value_sequences[0])
    for seq in value_sequences:
        if len(seq) != length:
            raise MeasureError("joint_entropy requires sequences of equal length")
    return shannon_entropy(list(zip(*value_sequences)))


def conditional_entropy(x: Sequence[Hashable], y: Sequence[Hashable]) -> float:
    """Conditional entropy ``H(X | Y)`` of aligned sequences, in bits.

    Computed as ``H(X, Y) - H(Y)``, which equals the paper's
    ``sum_y p(y) H(X | y)``.
    """
    if len(x) != len(y):
        raise MeasureError("conditional_entropy requires sequences of equal length")
    return joint_entropy(x, y) - shannon_entropy(y)


def mutual_information(x: Sequence[Hashable], y: Sequence[Hashable]) -> float:
    """Mutual information ``I(X; Y) = H(X) + H(Y) - H(X, Y)`` in bits (clamped at 0)."""
    if len(x) != len(y):
        raise MeasureError("mutual_information requires sequences of equal length")
    value = shannon_entropy(x) + shannon_entropy(y) - joint_entropy(x, y)
    return max(0.0, value)


def normalized_mutual_information(x: Sequence[Hashable], y: Sequence[Hashable]) -> float:
    """``I(X; Y) / H(X, Y)``, in [0, 1]; 0 when the joint entropy is 0."""
    joint = joint_entropy(x, y)
    if joint <= 0.0:
        return 0.0
    return mutual_information(x, y) / joint


def counts_of_codes(codes: Sequence[int], num_codes: int):
    """Histogram of a dictionary-encoded code column (codes in ``[0, num_codes)``).

    Array-backed codes take the ``np.bincount`` path and return an array; the
    values and their order are identical to the list path either way.
    """
    if _backend.is_array(codes):
        return _backend.get_numpy().bincount(codes, minlength=num_codes)
    counts = [0] * num_codes
    for code in codes:
        counts[code] += 1
    return counts


def entropy_of_codes(codes: Sequence[int], num_codes: int) -> float:
    """Shannon entropy (bits) of a code column, equal to ``shannon_entropy`` on the values."""
    return entropy_of_counts(counts_of_codes(codes, num_codes))


def joint_code_counts(
    x_codes: Sequence[int], y_codes: Sequence[int], y_num_codes: int
) -> dict[int, int]:
    """Histogram of the aligned pair column ``(x, y)``, keyed by ``x * |y| + y``.

    The combined integer key identifies the value pair uniquely, so the counts
    equal the histogram of ``zip(x_values, y_values)`` without building tuples.
    """
    counts: dict[int, int] = {}
    for x_code, y_code in zip(x_codes, y_codes):
        key = x_code * y_num_codes + y_code
        counts[key] = counts.get(key, 0) + 1
    return counts


def joint_entropy_of_codes(
    x_codes: Sequence[int], y_codes: Sequence[int], y_num_codes: int
) -> float:
    """``H(X, Y)`` in bits from two aligned code columns.

    When both columns are array-backed the joint histogram is reduced with
    ``np.unique`` over the combined key vector and then re-ordered to the
    first occurrence of each pair, which is exactly the insertion order of the
    dict built by :func:`joint_code_counts` — keeping the entropy accumulation
    bit-identical across backends.
    """
    if len(x_codes) != len(y_codes):
        raise MeasureError("joint_entropy_of_codes requires aligned code columns")
    if _backend.is_array(x_codes) and _backend.is_array(y_codes):
        np = _backend.get_numpy()
        combined = x_codes.astype(np.int64) * y_num_codes + y_codes
        _, first_index, counts = np.unique(
            combined, return_index=True, return_counts=True
        )
        return entropy_of_counts(counts[np.argsort(first_index)])
    return entropy_of_counts(joint_code_counts(x_codes, y_codes, y_num_codes).values())


def entropy_of_distribution(
    probabilities: Mapping[Hashable, float] | Iterable[float],
) -> float:
    """Entropy of an explicit probability distribution (must sum to ~1)."""
    if isinstance(probabilities, Mapping):
        probs = list(probabilities.values())
    else:
        probs = list(probabilities)
    total = sum(probs)
    if total <= 0:
        return 0.0
    entropy = 0.0
    for p in probs:
        if p <= 0:
            continue
        p = p / total
        entropy -= p * math.log2(p)
    return entropy
