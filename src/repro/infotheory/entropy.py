"""Shannon entropy, conditional entropy and mutual information.

All functions operate either on raw value sequences (hashable values, ``None``
allowed and treated as a regular symbol) or directly on count histograms.
Entropies are measured in bits (log base 2); the choice of base cancels in the
correlation and join-informativeness ratios, but bits make the unit tests easy
to reason about.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Iterable, Mapping, Sequence


def entropy_of_counts(counts: Iterable[int]) -> float:
    """Shannon entropy (bits) of a histogram of non-negative counts."""
    counts = [count for count in counts if count > 0]
    total = sum(counts)
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def shannon_entropy(values: Sequence[Hashable]) -> float:
    """Shannon entropy (bits) of the empirical distribution of ``values``."""
    return entropy_of_counts(Counter(values).values())


def joint_entropy(*value_sequences: Sequence[Hashable]) -> float:
    """Entropy of the joint empirical distribution of several aligned sequences."""
    if not value_sequences:
        return 0.0
    length = len(value_sequences[0])
    for seq in value_sequences:
        if len(seq) != length:
            raise ValueError("joint_entropy requires sequences of equal length")
    return shannon_entropy(list(zip(*value_sequences)))


def conditional_entropy(x: Sequence[Hashable], y: Sequence[Hashable]) -> float:
    """Conditional entropy ``H(X | Y)`` of aligned sequences, in bits.

    Computed as ``H(X, Y) - H(Y)``, which equals the paper's
    ``sum_y p(y) H(X | y)``.
    """
    if len(x) != len(y):
        raise ValueError("conditional_entropy requires sequences of equal length")
    return joint_entropy(x, y) - shannon_entropy(y)


def mutual_information(x: Sequence[Hashable], y: Sequence[Hashable]) -> float:
    """Mutual information ``I(X; Y) = H(X) + H(Y) - H(X, Y)`` in bits (clamped at 0)."""
    if len(x) != len(y):
        raise ValueError("mutual_information requires sequences of equal length")
    value = shannon_entropy(x) + shannon_entropy(y) - joint_entropy(x, y)
    return max(0.0, value)


def normalized_mutual_information(x: Sequence[Hashable], y: Sequence[Hashable]) -> float:
    """``I(X; Y) / H(X, Y)``, in [0, 1]; 0 when the joint entropy is 0."""
    joint = joint_entropy(x, y)
    if joint <= 0.0:
        return 0.0
    return mutual_information(x, y) / joint


def entropy_of_distribution(probabilities: Mapping[Hashable, float] | Iterable[float]) -> float:
    """Entropy of an explicit probability distribution (must sum to ~1)."""
    if isinstance(probabilities, Mapping):
        probs = list(probabilities.values())
    else:
        probs = list(probabilities)
    total = sum(probs)
    if total <= 0:
        return 0.0
    entropy = 0.0
    for p in probs:
        if p <= 0:
            continue
        p = p / total
        entropy -= p * math.log2(p)
    return entropy
