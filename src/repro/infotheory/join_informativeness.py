"""Join informativeness (Definition 2.4 of the paper).

Given two instances ``D`` and ``D'`` with join attribute(s) ``J``, the join
informativeness is

    JI(D, D') = (H(D.J, D'.J) - I(D.J, D'.J)) / H(D.J, D'.J)

where the joint distribution of ``D.J`` and ``D'.J`` is taken over the *full
outer* join of ``D`` and ``D'``.  Unmatched rows contribute ``(value, NULL)``
pairs, which raises the joint entropy without raising the mutual information,
so joins with many unmatched values are penalised (JI closer to 1).  Lower JI
means a more important / more informative join connection.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import JoinError
from repro.infotheory.entropy import joint_entropy, mutual_information
from repro.relational.joins import full_outer_join, shared_join_attributes
from repro.relational.table import Table


def join_informativeness_from_pairs(
    left_values: Sequence[object], right_values: Sequence[object]
) -> float:
    """JI computed directly from the aligned ``(D.J, D'.J)`` value pairs."""
    if len(left_values) != len(right_values):
        raise ValueError("join informativeness requires aligned value sequences")
    if not left_values:
        return 1.0
    joint = joint_entropy(left_values, right_values)
    if joint <= 0.0:
        # A single repeated value pair: the join carries no uncertainty at all.
        return 0.0
    mi = mutual_information(left_values, right_values)
    value = (joint - mi) / joint
    # Guard against tiny negative values from floating-point noise.
    return min(1.0, max(0.0, value))


def join_informativeness(
    left: Table,
    right: Table,
    on: Sequence[str] | None = None,
) -> float:
    """``JI(left, right)`` over the full outer join on ``on`` (default: shared attributes).

    Returns a value in ``[0, 1]``; smaller values indicate a more informative
    (more important) join connection between the two instances.
    """
    join_attrs = tuple(on) if on is not None else shared_join_attributes(left, right)
    if not join_attrs:
        raise JoinError(
            f"no join attributes between {left.name!r} and {right.name!r} for join informativeness"
        )
    outer = full_outer_join(left, right, join_attrs)
    left_keys = outer.key_tuples(list(join_attrs))
    right_copy_names = [f"{right.name}.{attr}" for attr in join_attrs]
    right_keys = outer.key_tuples(right_copy_names)
    return join_informativeness_from_pairs(left_keys, right_keys)


def path_join_informativeness(tables: Sequence[Table]) -> float:
    """Total JI along a join path: ``Σ JI(T_i, T_{i+1})`` (the paper's α constraint)."""
    total = 0.0
    for left, right in zip(tables, tables[1:]):
        total += join_informativeness(left, right)
    return total
