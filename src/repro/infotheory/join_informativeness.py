"""Join informativeness (Definition 2.4 of the paper).

Given two instances ``D`` and ``D'`` with join attribute(s) ``J``, the join
informativeness is

    JI(D, D') = (H(D.J, D'.J) - I(D.J, D'.J)) / H(D.J, D'.J)

where the joint distribution of ``D.J`` and ``D'.J`` is taken over the *full
outer* join of ``D`` and ``D'``.  Unmatched rows contribute ``(value, NULL)``
pairs, which raises the joint entropy without raising the mutual information,
so joins with many unmatched values are penalised (JI closer to 1).  Lower JI
means a more important / more informative join connection.

The joint distribution over the full outer join is a pure function of the two
join-key *histograms* (a key matched on both sides contributes
``count_left × count_right`` identical pairs; an unmatched key contributes its
own count of ``(value, NULL)`` / ``(NULL, value)`` pairs), so
:func:`join_informativeness` never materialises the outer join: it reduces the
cached key histograms of the two tables directly.  This is the kernel under
the join-graph construction and the target-graph weight term of the MCMC loop.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import JoinError, MeasureError
from repro.infotheory.entropy import entropy_of_counts, joint_entropy, mutual_information
from repro.relational.joins import shared_join_attributes
from repro.relational.table import Table


def join_informativeness_from_pairs(
    left_values: Sequence[object], right_values: Sequence[object]
) -> float:
    """JI computed directly from the aligned ``(D.J, D'.J)`` value pairs."""
    if len(left_values) != len(right_values):
        raise MeasureError("join informativeness requires aligned value sequences")
    if not left_values:
        return 1.0
    joint = joint_entropy(left_values, right_values)
    if joint <= 0.0:
        # A single repeated value pair: the join carries no uncertainty at all.
        return 0.0
    mi = mutual_information(left_values, right_values)
    value = (joint - mi) / joint
    # Guard against tiny negative values from floating-point noise.
    return min(1.0, max(0.0, value))


def join_informativeness_from_histograms(
    left_counts: Mapping[tuple, int],
    right_counts: Mapping[tuple, int],
    key_width: int,
) -> float:
    """JI from the two join-key histograms, without materialising the outer join.

    ``left_counts`` / ``right_counts`` map key tuples (``None`` components
    allowed) to row counts; ``key_width`` is the number of join attributes.
    The reduction mirrors the full-outer-join semantics exactly: keys with a
    ``None`` component never match, a matched key contributes the product of
    its counts as identical pairs, and unmatched rows pair with an all-``None``
    pad of the opposite side.
    """
    pad = (None,) * key_width
    joint: dict[tuple[tuple, tuple], int] = {}
    for key, left_count in left_counts.items():
        if left_count <= 0:
            continue
        right_count = (
            right_counts.get(key, 0) if not any(v is None for v in key) else 0
        )
        if right_count > 0:
            pair = (key, key)
            joint[pair] = joint.get(pair, 0) + left_count * right_count
        else:
            pair = (key, pad)
            joint[pair] = joint.get(pair, 0) + left_count
    for key, right_count in right_counts.items():
        if right_count <= 0:
            continue
        if any(v is None for v in key) or left_counts.get(key, 0) <= 0:
            pair = (pad, key)
            joint[pair] = joint.get(pair, 0) + right_count
    if not joint:
        return 1.0
    h_joint = entropy_of_counts(joint.values())
    if h_joint <= 0.0:
        return 0.0
    left_marginal: dict[tuple, int] = {}
    right_marginal: dict[tuple, int] = {}
    for (left_key, right_key), count in joint.items():
        left_marginal[left_key] = left_marginal.get(left_key, 0) + count
        right_marginal[right_key] = right_marginal.get(right_key, 0) + count
    mi = max(
        0.0,
        entropy_of_counts(left_marginal.values())
        + entropy_of_counts(right_marginal.values())
        - h_joint,
    )
    return min(1.0, max(0.0, (h_joint - mi) / h_joint))


def join_informativeness(
    left: Table,
    right: Table,
    on: Sequence[str] | None = None,
) -> float:
    """``JI(left, right)`` over the full outer join on ``on`` (default: shared attributes).

    Returns a value in ``[0, 1]``; smaller values indicate a more informative
    (more important) join connection between the two instances.  Computed from
    the (cached) join-key histograms of the two tables in time proportional to
    the number of distinct keys.
    """
    join_attrs = tuple(on) if on is not None else shared_join_attributes(left, right)
    if not join_attrs:
        raise JoinError(
            f"no join attributes between {left.name!r} and {right.name!r} for join informativeness"
        )
    return join_informativeness_from_histograms(
        left.encoded_key(join_attrs).value_counts(),
        right.encoded_key(join_attrs).value_counts(),
        len(join_attrs),
    )


def path_join_informativeness(tables: Sequence[Table]) -> float:
    """Total JI along a join path: ``Σ JI(T_i, T_{i+1})`` (the paper's α constraint)."""
    total = 0.0
    for left, right in zip(tables, tables[1:]):
        total += join_informativeness(left, right)
    return total
