"""Information-theoretic measures: entropy, correlation, join informativeness.

The paper uses three information-theoretic quantities:

* Shannon entropy / conditional entropy / mutual information over the value
  distributions of attribute sets (``entropy.py``);
* cumulative entropy for numerical attributes (``cumulative.py``), following
  Nguyen et al.'s mixed-type correlation measure;
* the mixed-type correlation ``CORR(X, Y)`` (Definition 2.5) and the join
  informativeness ``JI(D, D')`` (Definition 2.4), both in ``correlation.py``
  and ``join_informativeness.py``.

Classical comparators (Pearson's r, Cramér's V) live in ``comparators.py`` and
are used in the examples to sanity-check the entropy-based measure.
"""

from repro.infotheory.entropy import (
    conditional_entropy,
    counts_of_codes,
    entropy_of_codes,
    entropy_of_counts,
    joint_entropy,
    joint_entropy_of_codes,
    mutual_information,
    shannon_entropy,
)
from repro.infotheory.cumulative import (
    conditional_cumulative_entropy,
    cumulative_entropy,
)
from repro.infotheory.correlation import attribute_set_correlation, correlation
from repro.infotheory.join_informativeness import (
    join_informativeness,
    join_informativeness_from_histograms,
)
from repro.infotheory.comparators import cramers_v, pearson_correlation

__all__ = [
    "shannon_entropy",
    "entropy_of_counts",
    "counts_of_codes",
    "entropy_of_codes",
    "joint_entropy",
    "joint_entropy_of_codes",
    "conditional_entropy",
    "mutual_information",
    "cumulative_entropy",
    "conditional_cumulative_entropy",
    "correlation",
    "attribute_set_correlation",
    "join_informativeness",
    "join_informativeness_from_histograms",
    "pearson_correlation",
    "cramers_v",
]
