"""The DANCE middleware.

DANCE sits between the data shopper and the marketplace.  During the offline
phase it buys correlated samples of every hosted instance and builds the
two-layer join graph; during the online phase it answers acquisition requests
by running the two-step heuristic search on that graph and translating the
winning target graph into SQL projection queries.  When no feasible target
graph exists it iteratively buys more samples (at a higher sampling rate) and
retries, exactly as described in Section 2.1 of the paper.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.core.config import DanceConfig
from repro.core.result import AcquisitionResult, queries_for_target_graph
from repro.exceptions import InfeasibleAcquisitionError, StorageError
from repro.graph.join_graph import JoinGraph
from repro.graph.landmarks import derive_landmark_seed
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.quality.discovery import discover_afds
from repro.quality.fd import FunctionalDependency
from repro.relational import backend as relational_backend
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler
from repro.search.acquisition import SearchRuntime, heuristic_acquisition


class DANCE:
    """Data Acquisition framework on oNline data markets for CorrElation analysis.

    The middleware between a data shopper and a :class:`Marketplace`
    (Section 2.1 of the paper).  Typical use::

        dance = DANCE(marketplace)
        dance.build_offline()                      # buy samples, build the join graph
        result = dance.acquire(request)            # online search for one request
        print(result.sql())                        # the projection queries to purchase

    Parameters
    ----------
    marketplace:
        The marketplace to buy samples and instances from.
    config:
        All tunable knobs (sampling rate, MCMC budget, refinement policy,
        columnar-kernel backend, ...); defaults to :class:`DanceConfig`.
        When ``config.backend`` is set, the process-wide columnar backend
        (numpy vs. pure-python; see :mod:`repro.relational.backend`) is
        selected here, before any sample is encoded.
    known_fds:
        Known functional dependencies per instance name; instances without an
        entry get AFDs discovered on their samples instead.
    """

    def __init__(
        self,
        marketplace: Marketplace,
        config: DanceConfig | None = None,
        *,
        known_fds: Mapping[str, Sequence[FunctionalDependency]] | None = None,
    ) -> None:
        self.marketplace = marketplace
        self.config = config or DanceConfig()
        if self.config.backend is not None:
            relational_backend.set_backend(self.config.backend)
        self._known_fds = {
            name: list(fds) for name, fds in (known_fds or {}).items()
        }
        self._samples: dict[str, Table] = {}
        self._source_tables: dict[str, Table] = {}
        self._join_graph: JoinGraph | None = None
        self._fds: list[FunctionalDependency] = []
        self._sample_cost = 0.0
        self._current_rate = self.config.sampling_rate
        self._graph_version = 0

    # --------------------------------------------------------------- offline
    @property
    def join_graph(self) -> JoinGraph:
        if self._join_graph is None:
            raise InfeasibleAcquisitionError(
                "the offline phase has not run yet; call build_offline() first"
            )
        return self._join_graph

    @property
    def sample_cost(self) -> float:
        """Total amount spent on samples so far."""
        return self._sample_cost

    @property
    def fds(self) -> list[FunctionalDependency]:
        """The FDs used for quality measurement (known plus discovered on samples)."""
        return list(self._fds)

    @property
    def graph_version(self) -> int:
        """Monotonic counter bumped whenever the join graph's tables change.

        Long-lived callers (the acquisition service) key their derived caches
        and worker-preloaded pools on this: a version bump means evaluation
        memo entries and pool worker state may describe stale tables.
        """
        return self._graph_version

    def register_source_tables(self, tables: Sequence[Table]) -> dict[str, object]:
        """Register the shopper's local instances; they join for free.

        When the offline phase has already run, the join graph is updated
        immediately so the new sources participate in subsequent acquisitions
        (previously they were silently absent until the next offline rebuild).
        Genuinely new instances are added incrementally (only the edges
        touching them are computed); replacing an already-known instance
        rebuilds the graph so the FDs collected from the old data are dropped
        too — but the rebuild reuses the prior graph's cached JI weights for
        every instance pair whose samples did not change, so it only
        recomputes the edges touching the replaced instances.

        Returns a summary: which names were added vs. replaced, how the graph
        was refreshed (``"deferred"`` before the offline phase,
        ``"incremental"`` for pure additions, ``"rebuild"`` for
        replacements, ``"noop"`` when every "replacement" is the identical
        table object already in the graph), and how many I-edge weight maps
        were actually recomputed.  A no-op refresh does **not** bump
        :attr:`graph_version` — re-registering unchanged tables must not tear
        down session caches or warm worker pools keyed on the version.
        """
        added: list[str] = []
        replaced: list[str] = []
        for table in tables:
            if table.name in self._source_tables or table.name in self._samples:
                replaced.append(table.name)
            else:
                added.append(table.name)
            self._source_tables[table.name] = table
        summary: dict[str, object] = {"added": added, "replaced": replaced}
        if not tables or self._join_graph is None:
            summary["mode"] = "deferred"
            summary["edge_recomputes"] = 0
            return summary
        if not added and all(
            table.name in self._join_graph
            and self._join_graph.sample(table.name) is table
            for table in tables
        ):
            summary["mode"] = "noop"
            summary["edge_recomputes"] = 0
            return summary
        if replaced:
            self._rebuild_graph()
            summary["mode"] = "rebuild"
            summary["edge_recomputes"] = self._join_graph.edge_recomputes
            return summary
        recomputes_before = self._join_graph.edge_recomputes
        seen = {(fd.lhs, fd.rhs) for fd in self._fds}
        for table in tables:
            self._join_graph.add_instance(table, is_source=True)
            for fd in self._collect_fds({table.name: table}):
                if (fd.lhs, fd.rhs) not in seen:
                    seen.add((fd.lhs, fd.rhs))
                    self._fds.append(fd)
        self._graph_version += 1
        summary["mode"] = "incremental"
        summary["edge_recomputes"] = self._join_graph.edge_recomputes - recomputes_before
        return summary

    def build_offline(self, *, sampling_rate: float | None = None) -> JoinGraph:
        """Run the offline phase: buy samples of every hosted instance, build the graph."""
        rate = sampling_rate if sampling_rate is not None else self.config.sampling_rate
        self._current_rate = rate
        sampler = CorrelatedSampler(rate=rate, seed=self.config.sampling_seed)
        # Sample each dataset over its candidate join attributes (attributes
        # shared with other datasets, known from the free schema catalog), so
        # that joinable rows survive sampling together across instances.
        samples, cost = self.marketplace.sell_samples(
            sampler, join_attributes_by_dataset=self.marketplace.shared_attribute_map()
        )
        self._sample_cost += cost
        self._samples = samples
        self._rebuild_graph()
        return self.join_graph

    def _rebuild_graph(self) -> None:
        tables: dict[str, Table] = dict(self._samples)
        tables.update(self._source_tables)
        # Reusing the prior graph's JI cache makes the rebuild incremental:
        # only pairs whose endpoint samples changed are recomputed (identity
        # check inside JoinGraph), e.g. only the replaced source's edges after
        # register_source_tables, or only hosted-instance edges after a
        # refinement round re-buys samples (shopper tables never change).
        # The *first* build in a process has no prior graph to reuse; when the
        # marketplace carries a catalog with persisted offline state, JI
        # weights (and, when every table is unchanged, discovered FDs) are
        # adopted from there instead — a warm restart recomputes zero edges.
        preload_ji = adopted_fds = None
        if self._join_graph is None:
            preload_ji, adopted_fds = self._offline_preload(tables)
        self._join_graph = JoinGraph(
            tables,
            pricing=self.marketplace.pricing,
            max_join_attribute_size=self.config.max_join_attribute_size,
            source_instances=tuple(self._source_tables),
            reuse_cache_from=self._join_graph,
            preload_ji=preload_ji,
        )
        self._fds = (
            list(adopted_fds) if adopted_fds is not None else self._collect_fds(tables)
        )
        self._graph_version += 1

    def _offline_preload(
        self, tables: Mapping[str, Table]
    ) -> tuple[dict | None, list[FunctionalDependency] | None]:
        """Offline-phase state adoptable from the marketplace's catalog.

        Returns ``(preload_ji, fds)``: JI weights valid for the current
        tables (persisted weights whose endpoint fingerprints match the
        tables about to enter the graph — sampling is deterministic, so an
        unchanged source instance reproduces an unchanged sample), and the
        persisted FD list when *every* table is unchanged and the AFD
        parameters match (``None`` otherwise — FDs are deduplicated across
        tables, so partial adoption is not sound).  Unreadable offline state
        degrades to a cold build with a ``RuntimeWarning``; it never fails
        the build.
        """
        storage = self.marketplace.storage
        if storage is None:
            return None, None
        from repro.storage import NS_OFFLINE
        from repro.storage import serialize as _serialize

        try:
            payload = storage.get(NS_OFFLINE, "state")
            if payload is None:
                return None, None
            state = _serialize.loads(payload)
            if not isinstance(state, dict):
                raise StorageError("offline state is not a mapping")
            current = _serialize.fingerprint_tables(tables)
            preload = _serialize.ji_weights_from_spec(
                state.get("ji", ()), state.get("fingerprints", {}), current
            )
        except StorageError as error:
            warnings.warn(
                f"ignoring unreadable offline state in the catalog: {error}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None, None
        fds = None
        if (
            state.get("fingerprints") == current
            and tuple(state.get("afd_params", ()))
            == (self.config.afd_max_violation, self.config.afd_max_lhs_size)
            and sorted(state.get("known_names", ())) == sorted(self._known_fds)
            and isinstance(state.get("fds"), list)
        ):
            fds = state["fds"]
        return (preload or None), fds

    def persist(
        self,
        path: str | Path | None = None,
        *,
        kind: str | None = None,
        extra: "Callable | None" = None,
    ) -> object:
        """Checkpoint marketplace *and* offline phase into one catalog.

        Persists the marketplace (tables, encodings, pricing, revenues) plus
        the offline state this middleware derived from it: per-sample content
        fingerprints, every cached JI edge weight, and the discovered FDs —
        everything a fresh process needs for :meth:`build_offline` on the
        reopened catalog to recompute **zero** JI edges.  ``kind`` defaults to
        ``config.storage``; the write is atomic (see
        :meth:`repro.marketplace.market.Marketplace.persist`).  ``extra`` runs
        inside the same atomic write (used by the acquisition service to add
        its session caches).  Returns the attached backend.
        """
        from repro.storage import META_OFFLINE, NS_OFFLINE
        from repro.storage import serialize as _serialize

        def write_offline(backend) -> None:
            if self._join_graph is not None:
                graph = self._join_graph
                state = {
                    "fingerprints": _serialize.fingerprint_tables(graph._samples),
                    "ji": _serialize.ji_weights_to_spec(graph._ji_cache),
                    "fds": list(self._fds),
                    "known_names": sorted(self._known_fds),
                    "afd_params": (
                        self.config.afd_max_violation,
                        self.config.afd_max_lhs_size,
                    ),
                    "sampling": {
                        "rate": self._current_rate,
                        "seed": self.config.sampling_seed,
                    },
                    "sample_cost": self._sample_cost,
                    "revision": graph.revision,
                }
                backend.put(NS_OFFLINE, "state", _serialize.dumps(state))
                backend.put_meta(
                    META_OFFLINE,
                    {
                        "num_instances": len(graph),
                        "ji_entries": len(graph._ji_cache),
                        "num_fds": len(self._fds),
                        "sampling_rate": self._current_rate,
                    },
                )
            if extra is not None:
                extra(backend)

        return self.marketplace.persist(
            path, kind=kind or self.config.storage, extra=write_offline
        )

    def _collect_fds(self, tables: Mapping[str, Table]) -> list[FunctionalDependency]:
        fds: list[FunctionalDependency] = []
        seen: set[tuple] = set()
        for name, table in tables.items():
            if name in self._known_fds:
                table_fds = self._known_fds[name]
            else:
                table_fds = discover_afds(
                    table,
                    max_violation=self.config.afd_max_violation,
                    max_lhs_size=self.config.afd_max_lhs_size,
                )
            for fd in table_fds:
                key = (fd.lhs, fd.rhs)
                if key not in seen:
                    seen.add(key)
                    fds.append(fd)
        return fds

    # ---------------------------------------------------------------- online
    def acquire(
        self, request: AcquisitionRequest, *, runtime: SearchRuntime | None = None
    ) -> AcquisitionResult:
        """Answer one acquisition request (the online phase, Algorithm 1 + Step 1).

        Runs the two-step heuristic search — landmark-based I-graph seeding,
        then the MCMC walk over the AS-layer — on the offline join graph, and
        translates the best feasible target graph into billed projection
        queries.  When no feasible target graph exists, DANCE buys more
        samples at a higher sampling rate and retries, up to
        ``config.max_refinement_rounds`` times (iterative refinement).

        Parameters
        ----------
        request:
            ``A_S``/``A_T`` (source/target attributes), the budget ``B``, and
            the optional join-informativeness / quality constraints
            (``max_join_informativeness`` = α, ``min_quality`` = β).
        runtime:
            Optional :class:`~repro.search.acquisition.SearchRuntime` carrying
            session-scoped state — shared caches, a persistent executor pool,
            a per-request seed override, and a private re-sampling policy.
            Supplied by the acquisition service (:mod:`repro.service`); when
            given, iterative refinement is skipped unless
            ``runtime.allow_refinement`` is set, because refinement mutates
            shared middleware state.

        Returns
        -------
        AcquisitionResult
            The winning target graph, its evaluation (estimated correlation,
            price, quality), the projection queries to purchase (``.sql()``),
            and diagnostics such as the MCMC evaluation-cache hit rate.

        Raises
        ------
        InfeasibleAcquisitionError
            When no feasible target graph exists even after the configured
            number of refinement rounds.

        Calls :meth:`build_offline` implicitly if the offline phase has not
        run yet.
        """
        if self._join_graph is None:
            self.build_offline()

        max_rounds = self.config.max_refinement_rounds
        if runtime is not None and not runtime.allow_refinement:
            max_rounds = 0
        rounds = 0
        last_error: InfeasibleAcquisitionError | None = None
        while rounds <= max_rounds:
            try:
                result = self._search_once(request, runtime=runtime)
            except InfeasibleAcquisitionError as error:
                result = None
                last_error = error
            if result is not None:
                result.refinement_rounds = rounds
                return result
            rounds += 1
            if rounds > max_rounds:
                break
            # Buy more samples at a higher rate and retry (iterative refinement).
            next_rate = min(1.0, self._current_rate * self.config.refinement_rate_multiplier)
            if next_rate <= self._current_rate:
                break
            self.build_offline(sampling_rate=next_rate)
        raise last_error or InfeasibleAcquisitionError(
            "no feasible acquisition satisfies the request constraints"
        )

    def _search_once(
        self, request: AcquisitionRequest, *, runtime: SearchRuntime | None = None
    ) -> AcquisitionResult | None:
        runtime = runtime or SearchRuntime()
        # The runtime's private re-sampling policy (if any) replaces the
        # config-owned one: reset() mutates the policy, which concurrent
        # service requests must not share.
        resampling = (
            runtime.resampling if runtime.resampling is not None else self.config.resampling
        )
        resampling.reset()
        seed = runtime.mcmc_seed if runtime.mcmc_seed is not None else self.config.mcmc.seed
        mcmc_config = self.config.mcmc
        if runtime.plan is not None:
            # A runtime plan re-routes where chains execute; (seed, chains)
            # still pins the results bit for bit.
            mcmc_config = replace(
                mcmc_config, chains=runtime.plan.chains, executor=runtime.plan.executor
            )
        if seed != mcmc_config.seed:
            mcmc_config = replace(mcmc_config, seed=seed)
        heuristic = heuristic_acquisition(
            self.join_graph,
            request.source_attributes,
            request.target_attributes,
            self._fds,
            budget=request.budget,
            max_weight=request.max_join_informativeness,
            min_quality=request.min_quality,
            num_landmarks=self.config.num_landmarks,
            mcmc_config=mcmc_config,
            # Landmark selection gets its own blake2b-derived stream so Step 1
            # never replays the MCMC proposal draws seeded from the same base.
            landmark_seed=derive_landmark_seed(seed),
            intermediate_hook=resampling if resampling.enabled else None,
            evaluation_cache=runtime.evaluation_cache,
            ji_cache=runtime.ji_cache,
            step1_cache=runtime.step1_cache,
            pool=runtime.pool,
            pool_state=runtime.pool_state,
            candidate_filter=runtime.candidate_filter,
        )
        if not heuristic.feasible:
            return None
        target_graph, evaluation = heuristic.require_feasible()
        queries = queries_for_target_graph(target_graph, exclude=tuple(self._source_tables))
        # MCMCResult and MultiChainResult expose the same chain-diagnostic
        # surface (n_chains, executor, best_chain_index, chain_correlations).
        mcmc = heuristic.mcmc
        return AcquisitionResult(
            target_graph=target_graph,
            evaluation=evaluation,
            queries=queries,
            sample_cost=self._sample_cost,
            igraph_size=heuristic.igraph_size,
            igraph_index=heuristic.igraph_index,
            mcmc_cache_hit_rate=mcmc.evaluation_cache_hit_rate,
            mcmc_chains=mcmc.n_chains,
            mcmc_executor=mcmc.executor,
            mcmc_best_chain=mcmc.best_chain_index or 0,
            mcmc_chain_correlations=mcmc.chain_correlations,
        )

    # --------------------------------------------------------------- summaries
    def describe(self) -> dict[str, object]:
        graph_info: dict[str, object] = {}
        if self._join_graph is not None:
            graph_info = self._join_graph.describe()
        return {
            "marketplace": self.marketplace.describe(),
            "sampling_rate": self._current_rate,
            "sample_cost": self._sample_cost,
            "num_fds": len(self._fds),
            "join_graph": graph_info,
        }


def build_dance(
    marketplace: Marketplace,
    *,
    config: DanceConfig | None = None,
    source_tables: Sequence[Table] = (),
    mcmc_iterations: int | None = None,
) -> DANCE:
    """Convenience constructor: register sources, run the offline phase, return DANCE.

    Equivalent to constructing :class:`DANCE`, calling
    :meth:`DANCE.register_source_tables` with ``source_tables``, and then
    :meth:`DANCE.build_offline` — the returned middleware is ready for
    :meth:`DANCE.acquire` calls.  ``mcmc_iterations`` overrides the iteration
    count on a *copy* of the given configuration — the caller's
    ``DanceConfig`` is never mutated.
    """
    if mcmc_iterations is not None:
        base = config or DanceConfig()
        config = replace(base, mcmc=replace(base.mcmc, iterations=mcmc_iterations))
    dance = DANCE(marketplace, config)
    if source_tables:
        dance.register_source_tables(list(source_tables))
    dance.build_offline()
    return dance
