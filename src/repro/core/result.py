"""The acquisition result DANCE returns to the shopper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graph.target import TargetGraph, TargetGraphEvaluation
from repro.marketplace.market import ProjectionQuery


@dataclass
class AcquisitionResult:
    """What DANCE recommends for one acquisition request.

    Attributes
    ----------
    target_graph:
        The chosen target graph (instances, join attributes, projections).
    evaluation:
        Estimated correlation, quality, total join informativeness and price of
        the recommendation (estimated on the samples DANCE holds).
    queries:
        The SQL projection queries the shopper should send to the marketplace;
        instances owned by the shopper are excluded.
    sample_cost:
        How much DANCE spent on purchasing samples to serve this request
        (passed on to the shopper per the paper's service model).
    igraph_size:
        Size of the minimal-weight I-graph found by Step 1.
    igraph_index:
        Position of the winning candidate in Step 1's ordered candidate list
        — the tie-break key the shard router folds on (see
        :mod:`repro.service.router`).
    refinement_rounds:
        How many times DANCE had to buy more samples before it found a feasible
        recommendation.
    mcmc_cache_hit_rate:
        Fraction of MCMC candidate evaluations served from the walk's memo
        table, across all chains (see :class:`repro.search.mcmc.MCMCResult`
        and :class:`repro.search.chains.MultiChainResult`).
    mcmc_chains / mcmc_executor:
        How many Metropolis chains Step 2 ran and under which executor
        (``serial`` / ``thread`` / ``process``); ``1`` / ``"serial"`` for the
        paper's single-chain walk.
    mcmc_best_chain:
        Index of the chain that produced the recommended target graph
        (always 0 for a single-chain run).
    mcmc_chain_correlations:
        Best correlation found by each chain (``None`` for chains that found
        no feasible candidate) — the spread is a cheap convergence
        diagnostic for multi-modal AS-layers.
    """

    target_graph: TargetGraph
    evaluation: TargetGraphEvaluation
    queries: list[ProjectionQuery] = field(default_factory=list)
    sample_cost: float = 0.0
    igraph_size: int = 0
    igraph_index: int = 0
    refinement_rounds: int = 0
    mcmc_cache_hit_rate: float = 0.0
    mcmc_chains: int = 1
    mcmc_executor: str = "serial"
    mcmc_best_chain: int = 0
    mcmc_chain_correlations: list[float | None] = field(default_factory=list)

    @property
    def estimated_correlation(self) -> float:
        return self.evaluation.correlation

    @property
    def estimated_quality(self) -> float:
        return self.evaluation.quality

    @property
    def estimated_join_informativeness(self) -> float:
        return self.evaluation.weight

    @property
    def estimated_price(self) -> float:
        return self.evaluation.price

    @property
    def purchased_instances(self) -> list[str]:
        return self.target_graph.purchased_instances()

    def sql(self) -> list[str]:
        """The SQL text of all recommended queries."""
        return [query.to_sql() for query in self.queries]

    def summary(self) -> dict[str, object]:
        """A plain-dict summary used by examples and the experiment harness."""
        return {
            "instances": list(self.target_graph.nodes),
            "purchased_instances": self.purchased_instances,
            "projections": {
                name: sorted(attrs) for name, attrs in self.target_graph.projections.items()
            },
            "join_attributes": [sorted(edge) for edge in self.target_graph.edges],
            "estimated_correlation": self.estimated_correlation,
            "estimated_quality": self.estimated_quality,
            "estimated_join_informativeness": self.estimated_join_informativeness,
            "estimated_price": self.estimated_price,
            "sample_cost": self.sample_cost,
            "igraph_size": self.igraph_size,
            "igraph_index": self.igraph_index,
            "refinement_rounds": self.refinement_rounds,
            "mcmc_cache_hit_rate": self.mcmc_cache_hit_rate,
            "mcmc_chains": self.mcmc_chains,
            "mcmc_executor": self.mcmc_executor,
            "mcmc_best_chain": self.mcmc_best_chain,
            "mcmc_chain_correlations": list(self.mcmc_chain_correlations),
            "queries": self.sql(),
        }


def queries_for_target_graph(
    target_graph: TargetGraph, *, exclude: Sequence[str] = ()
) -> list[ProjectionQuery]:
    """Projection queries for every purchased instance of a target graph."""
    excluded = set(exclude) | set(target_graph.source_instances)
    queries: list[ProjectionQuery] = []
    for name in target_graph.nodes:
        if name in excluded:
            continue
        attributes = sorted(target_graph.projections[name])
        if attributes:
            queries.append(ProjectionQuery(name, attributes))
    return queries
