"""The DANCE middleware facade: offline join-graph construction and online acquisition.

``config``
    :class:`DanceConfig` — sampling rate, re-sampling policy, MCMC settings,
    landmark count, AFD discovery parameters.
``result``
    :class:`AcquisitionResult` — the purchase recommendation returned to the
    shopper (projection queries, estimated correlation/quality/JI, price).
``dance``
    :class:`DANCE` — the middleware itself.
"""

from repro.core.config import DanceConfig
from repro.core.result import AcquisitionResult
from repro.core.dance import DANCE

__all__ = ["DanceConfig", "AcquisitionResult", "DANCE"]
