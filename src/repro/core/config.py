"""Configuration of the DANCE middleware."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import ReproError, SamplingError
from repro.relational import backend as relational_backend
from repro.sampling.resampling import ResamplingPolicy
from repro.search.mcmc import MCMCConfig
from repro.search.plan import ExecutionPlan, warn_legacy_option


@dataclass
class ServiceConfig:
    """Knobs of the long-lived acquisition service (:mod:`repro.service`).

    Attributes
    ----------
    seed:
        Base seed of the service.  Per-request seeds are blake2b-derived from
        it by batch index (request 0 keeps the base seed — the same recipe as
        MCMC chain seeds), so a batch outcome depends only on
        ``(seed, request order)``.  ``None`` (the default) inherits the MCMC
        seed of the owning :class:`DanceConfig`.
    max_batch_workers:
        Thread fan-out for :meth:`repro.service.AcquisitionService.acquire_batch`
        — how many requests execute concurrently.  ``1`` serves batches
        serially (results are bit-identical either way).
    plan:
        An :class:`~repro.search.plan.ExecutionPlan` (or its ``parse()``-able
        string form) describing how searches execute: executor, chains, pool
        width, shared columnar store, and pool policy.  Takes precedence over
        the legacy per-knob spelling; see :class:`DanceConfig.plan`.
    chain_pool_workers:
        **Deprecated** alias for ``ExecutionPlan(workers=...)`` — size of the
        persistent executor pool serving multi-chain MCMC walks; ``None``
        uses the plan's default (``min(chains, 8)``, additionally capped at
        the CPU count for process pools).  Emits a :class:`DeprecationWarning`
        when set; kept for one release.
    share_caches:
        Whether the service keeps its evaluation memo and JI cache across
        requests (on by default; disabling isolates every request, which is
        only useful for measuring cache effectiveness).
    cache_stripes:
        Lock striping of the shared caches (see
        :class:`repro.search.chains.LockStripedCache`).
    max_queue_depth:
        Bound on how many requests may be admitted (queued + executing) at
        once.  ``None`` (the default) admits everything — the pre-traffic-layer
        behaviour.  Admission never changes a served request's result, only
        whether/when it runs.
    admission:
        What happens to a request arriving at a full queue: ``"block"``
        (default) applies backpressure — the submitting caller waits for a
        slot; ``"reject"`` sheds load — the request fails immediately with
        :class:`~repro.exceptions.AdmissionRejectedError` (raised by
        ``acquire``, recorded on the batch item by ``acquire_batch``).
    metrics_window:
        Size of the sliding window behind the service metrics (latency
        percentiles, cache hit-rate trend; see :mod:`repro.service.metrics`).
    step1_memo:
        Whether the service memoises Step 1 (``minimal_weight_igraphs``) per
        ``(terminal set, alpha, num_landmarks, landmark seed, graph
        version)`` so warm requests skip the landmark/Steiner search.  On by
        default; results are bit-identical either way.
    catalog_path:
        Path of the service's persistent catalog (see :mod:`repro.storage`).
        When set, the service restores its session caches (JI cache, Step-1
        memo) from the catalog at startup and checkpoints marketplace, graph,
        and caches back to it after ``register_source_tables``.  ``None``
        (the default) keeps the service fully in-memory.
    qos:
        QoS scheduling (:mod:`repro.service.qos`).  ``None`` (the default)
        keeps the PR 5 FIFO admission queue.  A
        :class:`~repro.service.qos.QosConfig` — or ``True``/``"on"`` for the
        default tier ladder — replaces it with the weighted-fair-queueing
        scheduler: SLA-tier weights, per-shopper token buckets, and
        deadline-aware shedding.  ``max_queue_depth``/``admission`` keep
        their meaning (the scheduler enforces the same bound and policy).
        QoS never changes a served request's result, only whether/when it
        runs.
    """

    seed: int | None = None
    max_batch_workers: int = 4
    plan: ExecutionPlan | str | None = None
    chain_pool_workers: int | None = None
    share_caches: bool = True
    cache_stripes: int = 16
    max_queue_depth: int | None = None
    admission: str = "block"
    metrics_window: int = 256
    step1_memo: bool = True
    catalog_path: str | None = None
    qos: "object | bool | str | None" = None

    def __post_init__(self) -> None:
        self.plan = ExecutionPlan.normalize(self.plan)
        if self.qos is not None:
            # Deferred import: repro.service.qos imports this module's siblings.
            from repro.service.qos import QosConfig

            self.qos = QosConfig.normalize(self.qos)
        if self.max_batch_workers < 1:
            raise ReproError(
                f"max_batch_workers must be >= 1, got {self.max_batch_workers}"
            )
        if self.chain_pool_workers is not None and self.chain_pool_workers < 1:
            raise ReproError(
                f"chain_pool_workers must be >= 1, got {self.chain_pool_workers}"
            )
        if self.chain_pool_workers is not None:
            warn_legacy_option(
                "ServiceConfig(chain_pool_workers=...)", "ExecutionPlan(workers=...)"
            )
        if self.cache_stripes < 1:
            raise ReproError(f"cache_stripes must be >= 1, got {self.cache_stripes}")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ReproError(
                f"max_queue_depth must be >= 1 (or None for unbounded), "
                f"got {self.max_queue_depth}"
            )
        if self.admission not in ("block", "reject"):
            raise ReproError(
                f"admission must be 'block' or 'reject', got {self.admission!r}"
            )
        if self.metrics_window < 1:
            raise ReproError(
                f"metrics_window must be >= 1, got {self.metrics_window}"
            )


@dataclass
class DanceConfig:
    """All tunable knobs of the middleware in one place.

    Attributes
    ----------
    sampling_rate:
        Correlated-sampling rate used when buying samples from the marketplace
        during the offline phase (the paper's sampling-rate experiment in
        Figure 6 varies this between 0.1 and 1.0).
    sampling_seed:
        Selects the hash family of the correlated sampler.
    resampling:
        Correlated re-sampling policy for intermediate join results (threshold
        ``eta`` and re-sampling rate; Figure 8 varies the rate).
    mcmc:
        Step 2 configuration (iterations ``ℓ``, seed, proposal mix, and the
        parallel-search knobs: ``MCMCConfig(chains=N, executor="thread")``
        runs N independently-seeded Metropolis chains per candidate I-graph
        under the chosen executor — ``serial`` / ``thread`` / ``process`` —
        sharing the evaluation and join-informativeness caches; results are
        bit-identical for a fixed ``(seed, chains)`` whatever the executor or
        columnar backend.  ``record_trace`` re-enables the per-iteration
        correlation trace).
    num_landmarks:
        Number of landmarks used by Step 1.
    max_join_attribute_size:
        Largest join attribute set enumerated per instance pair when building
        the join graph.
    afd_max_violation / afd_max_lhs_size:
        Parameters of AFD discovery on the samples (quality measurement uses
        the discovered AFDs; the paper uses a violation threshold of 0.1).
    max_refinement_rounds:
        How many times the online phase may buy more samples (at a higher
        sampling rate) and retry when no feasible target graph exists.
    refinement_rate_multiplier:
        Factor applied to the sampling rate on each refinement round.
    backend:
        Columnar-kernel backend for the hot path: ``"numpy"``, ``"python"``,
        or ``"auto"`` (numpy when importable).  ``None`` (the default) leaves
        the process-wide selection alone — i.e. the ``REPRO_BACKEND``
        environment variable or automatic detection; a non-``None`` value is
        applied process-wide when the :class:`~repro.core.dance.DANCE`
        middleware is constructed (see :mod:`repro.relational.backend`).
        Both backends produce bit-identical results.
    plan:
        An :class:`~repro.search.plan.ExecutionPlan` (object or
        ``parse()``-able string like ``"executor=process,chains=4"``)
        consolidating every execution knob: it overrides
        ``mcmc.chains`` / ``mcmc.executor`` and supplies the service's pool
        width, shared-store switch, and pool policy.  ``None`` (the default)
        derives an equivalent plan from the legacy knobs
        (:meth:`execution_plan`), so old configurations behave identically.
        A plan set on ``service`` applies too; a plan set here wins.
    storage:
        Default catalog storage backend kind for
        :meth:`~repro.core.dance.DANCE.persist`: ``"memory"``, ``"sqlite"``,
        or ``"duckdb"`` (``duckdb`` degrades to sqlite with a
        ``RuntimeWarning`` when the module is not importable, mirroring the
        numpy fallback above).  ``None`` (the default) infers the kind from
        the persist target — sqlite for paths, memory otherwise.  All
        backends store byte-identical payloads and serve bit-identical
        acquisitions.
    service:
        Configuration of the long-lived acquisition service
        (:class:`ServiceConfig`: batch fan-out, persistent pool size, shared
        caches, per-request seed derivation).  Ignored by one-shot
        :meth:`~repro.core.dance.DANCE.acquire` calls.
    """

    sampling_rate: float = 0.3
    sampling_seed: int = 0
    resampling: ResamplingPolicy = field(default_factory=ResamplingPolicy)
    mcmc: MCMCConfig = field(default_factory=MCMCConfig)
    num_landmarks: int = 4
    max_join_attribute_size: int = 2
    afd_max_violation: float = 0.1
    afd_max_lhs_size: int = 2
    max_refinement_rounds: int = 2
    refinement_rate_multiplier: float = 2.0
    backend: str | None = None
    storage: str | None = None
    service: ServiceConfig = field(default_factory=ServiceConfig)
    plan: ExecutionPlan | str | None = None

    def __post_init__(self) -> None:
        plan = ExecutionPlan.normalize(self.plan)
        if plan is None and isinstance(self.service, ServiceConfig):
            plan = self.service.plan
        if plan is not None:
            self.plan = plan
            self.mcmc = replace(self.mcmc, chains=plan.chains, executor=plan.executor)
        if self.backend is not None:
            # Normalises aliases and raises early on unknown backend names.
            self.backend = relational_backend.normalize(self.backend)
        if self.storage is not None:
            from repro.storage import normalize_kind

            self.storage = normalize_kind(self.storage)
        if not 0.0 < self.sampling_rate <= 1.0:
            raise SamplingError(
                f"sampling_rate must be in (0, 1], got {self.sampling_rate}"
            )
        if self.num_landmarks < 1:
            raise SamplingError(f"num_landmarks must be >= 1, got {self.num_landmarks}")
        if self.max_refinement_rounds < 0:
            raise SamplingError(
                f"max_refinement_rounds must be >= 0, got {self.max_refinement_rounds}"
            )
        if self.refinement_rate_multiplier < 1.0:
            raise SamplingError(
                "refinement_rate_multiplier must be >= 1.0, got "
                f"{self.refinement_rate_multiplier}"
            )

    @property
    def execution_plan(self) -> ExecutionPlan:
        """The effective plan: ``plan`` when set, else the legacy knobs folded
        into an equivalent :class:`ExecutionPlan` (no deprecation warning —
        this is the internal bridge that keeps old spellings working)."""
        if isinstance(self.plan, ExecutionPlan):
            return self.plan
        workers = None
        if isinstance(self.service, ServiceConfig):
            workers = self.service.chain_pool_workers
        return ExecutionPlan.from_legacy(
            executor=self.mcmc.executor, chains=self.mcmc.chains, workers=workers
        )

    def refined(self) -> "DanceConfig":
        """The configuration for one refinement round: a higher sampling rate."""
        new_rate = min(1.0, self.sampling_rate * self.refinement_rate_multiplier)
        return DanceConfig(
            sampling_rate=new_rate,
            sampling_seed=self.sampling_seed,
            resampling=self.resampling,
            mcmc=self.mcmc,
            num_landmarks=self.num_landmarks,
            max_join_attribute_size=self.max_join_attribute_size,
            afd_max_violation=self.afd_max_violation,
            afd_max_lhs_size=self.afd_max_lhs_size,
            max_refinement_rounds=self.max_refinement_rounds,
            refinement_rate_multiplier=self.refinement_rate_multiplier,
            backend=self.backend,
            storage=self.storage,
            service=self.service,
            plan=self.plan,
        )
